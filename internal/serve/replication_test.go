package serve

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"
	"time"
)

// The replication conformance suite: a Follower's published tables must be
// bit-identical to its leader's at every epoch — the wire codec
// round-trips raw float32 bits, so unlike the backend conformance suite
// there is no tolerance, not even one ULP. Covered here: fresh bootstrap
// over both serving backends, durable restart catch-up from checkpoint +
// WAL tail, full-snapshot resync past the leader's log bound, and pinned
// reads surviving leader death.

const replWait = 10 * time.Second

func waitReady(t *testing.T, f *Follower) {
	t.Helper()
	select {
	case <-f.Ready():
	case <-time.After(replWait):
		t.Fatalf("follower never became ready: %+v", f.Stats())
	}
}

func waitFollowerEpoch(t *testing.T, f *Follower, epoch uint64) {
	t.Helper()
	deadline := time.Now().Add(replWait)
	for {
		if cur := f.pub.Current(); cur != nil && cur.epoch >= epoch {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck waiting for epoch %d: %+v", epoch, f.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// assertMirror requires the follower's tables to be bit-identical to the
// leader's at the same epoch.
func assertMirror(t *testing.T, srv *Server, f *Follower, ctx string) {
	t.Helper()
	ls, fs := srv.pub.Current(), f.pub.Current()
	if fs == nil {
		t.Fatalf("%s: follower has no published snapshot", ctx)
	}
	if ls.epoch != fs.epoch {
		t.Fatalf("%s: leader at epoch %d, follower at %d", ctx, ls.epoch, fs.epoch)
	}
	if ls.n != fs.n || ls.classes != fs.classes {
		t.Fatalf("%s: geometry %d×%d (leader) vs %d×%d (follower)", ctx, ls.n, ls.classes, fs.n, fs.classes)
	}
	ll, lx := ls.Tables(nil, nil)
	fl, fx := fs.Tables(nil, nil)
	for v := range ll {
		if ll[v] != fl[v] {
			t.Fatalf("%s: vertex %d label %d (leader) vs %d (follower)", ctx, v, ll[v], fl[v])
		}
	}
	for i := range lx {
		if math.Float32bits(lx[i]) != math.Float32bits(fx[i]) {
			t.Fatalf("%s: logit %d bits %08x (leader) vs %08x (follower)", ctx, i, math.Float32bits(lx[i]), math.Float32bits(fx[i]))
		}
	}
}

// TestReplicationMirrorsBothBackends runs a leader with two followers
// over each serving backend (single-node engine and distributed cluster)
// and checks bit-identical tables at the bootstrap epoch and after every
// applied batch, plus end-to-end lag observability on both sides.
func TestReplicationMirrorsBothBackends(t *testing.T) {
	const n = 60
	w := newConfWorld(t, n, 240, 77)
	engSrv, cluSrv := w.servers(3, Config{})

	type side struct {
		name      string
		srv       *Server
		followers []*Follower
	}
	sides := []*side{{name: "engine", srv: engSrv}, {name: "cluster", srv: cluSrv}}
	for _, s := range sides {
		repl, err := s.srv.StartReplication("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			f, err := Follow(FollowerConfig{Leader: repl.Addr()})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(f.Close)
			s.followers = append(s.followers, f)
		}
	}

	// A fresh follower has no base tables, so it must be bootstrapped by a
	// full snapshot of the leader's bootstrap epoch — before any batch has
	// put a delta in the log.
	for _, s := range sides {
		for i, f := range s.followers {
			waitReady(t, f)
			assertMirror(t, s.srv, f, fmt.Sprintf("%s follower %d bootstrap", s.name, i))
		}
	}

	for b := 0; b < 8; b++ {
		batch := w.batch(1 + w.rng.Intn(5))
		for _, s := range sides {
			if _, err := s.srv.Apply(batch); err != nil {
				t.Fatalf("%s batch %d: %v", s.name, b, err)
			}
			target := s.srv.pub.Current().epoch
			for i, f := range s.followers {
				waitFollowerEpoch(t, f, target)
				assertMirror(t, s.srv, f, fmt.Sprintf("%s follower %d batch %d", s.name, i, b))
			}
		}
	}

	for _, s := range sides {
		st := s.srv.Stats()
		if st.ReplFollowers != 2 || st.ReplEpoch != st.Epoch || st.ReplFramesSent == 0 || st.ReplSnapshotsSent < 2 {
			t.Fatalf("%s leader replication stats: %+v", s.name, st.ReplStats)
		}
		for i, f := range s.followers {
			fs := f.Stats()
			if !fs.Ready || !fs.Connected || fs.LagEpochs != 0 || fs.Epoch != st.Epoch || fs.FramesApplied == 0 {
				t.Fatalf("%s follower %d stats: %+v", s.name, i, fs)
			}
		}
	}
}

// TestFollowerDurableRestartCatchUp kills a durable follower (via a
// crash-image copy of its data dir), advances the leader, and checks the
// restarted follower recovers from its local checkpoint + WAL tail, then
// catches the rest up from the leader's delta log — no snapshot resync —
// and ends bit-identical.
func TestFollowerDurableRestartCatchUp(t *testing.T) {
	const n = 40
	w := newConfWorld(t, n, 160, 83)
	srv, _ := w.servers(2, Config{})
	repl, err := srv.StartReplication("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "live")
	f1, err := Follow(FollowerConfig{Leader: repl.Addr(), DataDir: dir, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, f1)
	for b := 0; b < 6; b++ {
		if _, err := srv.Apply(w.batch(2)); err != nil {
			t.Fatal(err)
		}
	}
	waitFollowerEpoch(t, f1, srv.pub.Current().epoch)

	// CheckpointEvery=4 over 6 epochs leaves the last 2 frames in the WAL
	// past the newest automatic checkpoint; freeze that state now.
	crash := filepath.Join(t.TempDir(), "crash")
	copyDir(t, dir, crash)
	f1.Close()

	// The leader moves on while the follower is down (still within the
	// default in-memory delta log).
	for b := 0; b < 3; b++ {
		if _, err := srv.Apply(w.batch(2)); err != nil {
			t.Fatal(err)
		}
	}

	f2, err := Follow(FollowerConfig{Leader: repl.Addr(), DataDir: crash, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f2.Close)
	if st := f2.Stats(); st.RecoveredFrames == 0 {
		t.Fatalf("restart replayed no WAL frames: %+v", st)
	}
	waitFollowerEpoch(t, f2, srv.pub.Current().epoch)
	assertMirror(t, srv, f2, "after restart catch-up")
	if st := f2.Stats(); st.SnapshotResyncs != 0 {
		t.Fatalf("in-log catch-up fell back to a snapshot resync: %+v", st)
	}
}

// TestFollowerSnapshotResyncPastLogBound restarts a follower whose
// watermark has fallen off the leader's bounded delta log: catch-up must
// come as exactly one full-snapshot resync, after which the follower is
// bit-identical again.
func TestFollowerSnapshotResyncPastLogBound(t *testing.T) {
	const n = 40
	w := newConfWorld(t, n, 160, 89)
	srv, _ := w.servers(2, Config{ReplicationLogEpochs: 4})
	repl, err := srv.StartReplication("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	f1, err := Follow(FollowerConfig{Leader: repl.Addr(), DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, f1)
	for b := 0; b < 3; b++ {
		if _, err := srv.Apply(w.batch(2)); err != nil {
			t.Fatal(err)
		}
	}
	waitFollowerEpoch(t, f1, srv.pub.Current().epoch)
	f1.Close()

	// Eight more epochs: the 4-epoch log no longer reaches back to the
	// follower's watermark.
	for b := 0; b < 8; b++ {
		if _, err := srv.Apply(w.batch(2)); err != nil {
			t.Fatal(err)
		}
	}

	f2, err := Follow(FollowerConfig{Leader: repl.Addr(), DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f2.Close)
	waitFollowerEpoch(t, f2, srv.pub.Current().epoch)
	assertMirror(t, srv, f2, "after snapshot resync")
	if st := f2.Stats(); st.SnapshotResyncs != 1 {
		t.Fatalf("want exactly one snapshot resync, got %+v", st)
	}
	if st := srv.Stats(); st.ReplSnapshotsSent < 2 {
		t.Fatalf("leader served %d snapshot frames, want ≥ 2 (initial + resync)", st.ReplSnapshotsSent)
	}
}

// TestFollowerServesPinnedReadsAcrossLeaderDeath pins a snapshot on a
// caught-up follower, kills the leader, and checks the follower keeps
// serving: the pin is repeatable, fresh snapshots stay at the last
// replicated epoch, and the only state change is Connected going false.
func TestFollowerServesPinnedReadsAcrossLeaderDeath(t *testing.T) {
	const n = 40
	w := newConfWorld(t, n, 160, 97)
	srv, _ := w.servers(2, Config{})
	repl, err := srv.StartReplication("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f, err := Follow(FollowerConfig{Leader: repl.Addr(), RetryEvery: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	waitReady(t, f)
	for b := 0; b < 5; b++ {
		if _, err := srv.Apply(w.batch(2)); err != nil {
			t.Fatal(err)
		}
	}
	target := srv.pub.Current().epoch
	waitFollowerEpoch(t, f, target)

	pinned := f.Snapshot()
	wantLabels, wantLogits := pinned.Tables(nil, nil)

	srv.Close() // leader dies: hub severs the session, listener stops

	deadline := time.Now().Add(replWait)
	for f.Stats().Connected {
		if time.Now().After(deadline) {
			t.Fatalf("follower still reports a live session after leader close: %+v", f.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	st := f.Stats()
	if !st.Ready || st.Epoch != target {
		t.Fatalf("follower lost its published epoch with the leader: %+v", st)
	}
	// The pre-death pin is repeatable bit for bit.
	gotLabels, gotLogits := pinned.Tables(nil, nil)
	for v := range wantLabels {
		if gotLabels[v] != wantLabels[v] {
			t.Fatalf("pinned label %d changed after leader death", v)
		}
	}
	for i := range wantLogits {
		if math.Float32bits(gotLogits[i]) != math.Float32bits(wantLogits[i]) {
			t.Fatalf("pinned logit %d changed after leader death", i)
		}
	}
	// Fresh reads still serve the last replicated epoch (Server.Close keeps
	// the leader's own reads alive too, so the mirror check still applies).
	if fresh := f.Snapshot(); fresh.Epoch() != target {
		t.Fatalf("fresh snapshot at epoch %d, want %d", fresh.Epoch(), target)
	}
	assertMirror(t, srv, f, "after leader death")
}
