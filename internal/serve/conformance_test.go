package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ripple/internal/cluster"
	"ripple/internal/engine"
	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/partition"
	"ripple/internal/tensor"
)

// The backend conformance suite: the serving layer must behave
// identically over the single-node engine and the distributed cluster —
// same epochs, same label tables, same logits (within float-accumulation
// tolerance), same trigger stream, same rejection semantics — for the
// same update stream. This is the contract that makes the cluster a
// drop-in serving tier rather than a benchmark harness.

// confTol bounds the float drift between single-node and distributed
// accumulation orders (mirrors the cluster suite's distTol).
const confTol = 5e-3

// confWorld owns the reference topology/features and generates one valid
// update stream that both backends consume.
type confWorld struct {
	t     *testing.T
	rng   *rand.Rand
	model *gnn.Model
	g     *graph.Graph // reference topology, mutated as the stream is drawn
	x     []tensor.Vector
	edges [][2]graph.VertexID
}

func newConfWorld(t *testing.T, n, m int, seed int64) *confWorld {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	model, err := gnn.NewWorkload("GC-S", []int{6, 8, 5}, seed)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(n)
	var edges [][2]graph.VertexID
	for i := 0; i < m; i++ {
		u, v := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		if u != v && g.AddEdge(u, v, 0.2+rng.Float32()) == nil {
			edges = append(edges, [2]graph.VertexID{u, v})
		}
	}
	x := make([]tensor.Vector, n)
	for i := range x {
		x[i] = randVec(rng, model.Dims[0])
	}
	return &confWorld{t: t, rng: rng, model: model, g: g, x: x, edges: edges}
}

// servers builds one Server per backend over identical bootstrap state.
func (w *confWorld) servers(workers int, cfg Config) (engSrv, cluSrv *Server) {
	w.t.Helper()
	build := func() (*graph.Graph, *gnn.Embeddings) {
		g := w.g.Clone()
		emb, err := gnn.Forward(g, w.model, w.x)
		if err != nil {
			w.t.Fatal(err)
		}
		return g, emb
	}

	engGraph, engEmb := build()
	eng, err := engine.NewRipple(engGraph, w.model, engEmb, engine.Config{})
	if err != nil {
		w.t.Fatal(err)
	}
	engSrv, err = New(eng, cfg)
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(engSrv.Close)

	cluGraph, cluEmb := build()
	assign, err := partition.ByName("hash", cluGraph, workers)
	if err != nil {
		w.t.Fatal(err)
	}
	c, err := cluster.NewLocal(cluster.LocalConfig{
		Graph:      cluGraph,
		Model:      w.model,
		Embeddings: cluEmb,
		Assignment: assign,
		Strategy:   cluster.StratRipple,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	backend, err := NewClusterBackend(c, cluGraph.Clone())
	if err != nil {
		w.t.Fatal(err)
	}
	cluSrv, err = NewBackend(backend, cfg)
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(cluSrv.Close) // closes the cluster through the backend
	return engSrv, cluSrv
}

// batch draws one valid batch against the reference topology (mutating
// it, so successive batches stay valid on both backends).
func (w *confWorld) batch(k int) []engine.Update {
	w.t.Helper()
	n := w.g.NumVertices()
	var batch []engine.Update
	for len(batch) < k {
		switch w.rng.Intn(3) {
		case 0:
			u, v := graph.VertexID(w.rng.Intn(n)), graph.VertexID(w.rng.Intn(n))
			if u == v || w.g.HasEdge(u, v) {
				continue
			}
			wt := 0.2 + w.rng.Float32()
			if err := w.g.AddEdge(u, v, wt); err != nil {
				w.t.Fatal(err)
			}
			w.edges = append(w.edges, [2]graph.VertexID{u, v})
			batch = append(batch, engine.Update{Kind: engine.EdgeAdd, U: u, V: v, Weight: wt})
		case 1:
			if len(w.edges) == 0 {
				continue
			}
			i := w.rng.Intn(len(w.edges))
			e := w.edges[i]
			w.edges[i] = w.edges[len(w.edges)-1]
			w.edges = w.edges[:len(w.edges)-1]
			if !w.g.HasEdge(e[0], e[1]) {
				continue
			}
			if _, err := w.g.RemoveEdge(e[0], e[1]); err != nil {
				w.t.Fatal(err)
			}
			batch = append(batch, engine.Update{Kind: engine.EdgeDelete, U: e[0], V: e[1]})
		default:
			u := graph.VertexID(w.rng.Intn(n))
			feat := randVec(w.rng, w.model.Dims[0])
			w.x[u].CopyFrom(feat)
			batch = append(batch, engine.Update{Kind: engine.FeatureUpdate, U: u, Features: feat.Clone()})
		}
	}
	return batch
}

// assertAgreement compares the two servers' published epochs row by row.
func assertAgreement(t *testing.T, engSrv, cluSrv *Server, n int, ctx string) {
	t.Helper()
	es, cs := engSrv.Snapshot(), cluSrv.Snapshot()
	if es.Epoch() != cs.Epoch() {
		t.Fatalf("%s: engine epoch %d, cluster epoch %d", ctx, es.Epoch(), cs.Epoch())
	}
	if es.NumVertices() != n || cs.NumVertices() != n {
		t.Fatalf("%s: snapshot sizes %d/%d, want %d", ctx, es.NumVertices(), cs.NumVertices(), n)
	}
	for v := 0; v < n; v++ {
		id := graph.VertexID(v)
		if es.Label(id) != cs.Label(id) {
			t.Fatalf("%s: vertex %d label %d (engine) vs %d (cluster)", ctx, v, es.Label(id), cs.Label(id))
		}
		if d := es.Embedding(id).MaxAbsDiff(cs.Embedding(id)); d > confTol {
			t.Fatalf("%s: vertex %d logits drift %v", ctx, v, d)
		}
	}
}

// TestBackendConformanceApply streams synchronous batches through both
// backends and checks every published epoch agrees on every row.
func TestBackendConformanceApply(t *testing.T) {
	const n = 60
	w := newConfWorld(t, n, 240, 51)
	engSrv, cluSrv := w.servers(3, Config{})

	assertAgreement(t, engSrv, cluSrv, n, "bootstrap")
	for b := 0; b < 8; b++ {
		batch := w.batch(1 + w.rng.Intn(6))
		eres, err := engSrv.Apply(batch)
		if err != nil {
			t.Fatalf("batch %d engine: %v", b, err)
		}
		cres, err := cluSrv.Apply(batch)
		if err != nil {
			t.Fatalf("batch %d cluster: %v", b, err)
		}
		if len(eres.FinalFrontier) != len(cres.FinalFrontier) {
			t.Fatalf("batch %d: final frontier %d (engine) vs %d (cluster)", b, len(eres.FinalFrontier), len(cres.FinalFrontier))
		}
		assertAgreement(t, engSrv, cluSrv, n, fmt.Sprintf("batch %d", b))
	}

	est, cst := engSrv.Stats(), cluSrv.Stats()
	if est.Batches != cst.Batches || est.Epoch != cst.Epoch || est.UpdatesApplied != cst.UpdatesApplied {
		t.Fatalf("stats diverge: engine %+v, cluster %+v", est, cst)
	}
	if est.LabelFlips != cst.LabelFlips {
		t.Fatalf("label flips diverge: engine %d, cluster %d", est.LabelFlips, cst.LabelFlips)
	}
	// Only the cluster moves bytes over a wire.
	if est.CommBytes != 0 || est.GatherBytes != 0 {
		t.Errorf("engine backend reports comm traffic: %+v", est.CommStats)
	}
	if cst.CommBytes <= 0 || cst.RouteBytes <= 0 || cst.GatherBytes <= 0 || cst.CommMsgs <= 0 {
		t.Errorf("cluster backend comm counters not populated: %+v", cst.CommStats)
	}
}

// TestBackendConformanceTriggers pins the Subscribe stream: both backends
// must deliver the identical label-flip sequence, in order.
func TestBackendConformanceTriggers(t *testing.T) {
	const n = 50
	w := newConfWorld(t, n, 200, 53)
	engSrv, cluSrv := w.servers(2, Config{})

	engCh, engCancel := engSrv.Subscribe(4096)
	defer engCancel()
	cluCh, cluCancel := cluSrv.Subscribe(4096)
	defer cluCancel()

	for b := 0; b < 6; b++ {
		batch := w.batch(4)
		if _, err := engSrv.Apply(batch); err != nil {
			t.Fatal(err)
		}
		if _, err := cluSrv.Apply(batch); err != nil {
			t.Fatal(err)
		}
	}
	drain := func(ch <-chan engine.LabelChange) []engine.LabelChange {
		var out []engine.LabelChange
		for {
			select {
			case lc := <-ch:
				out = append(out, lc)
			default:
				return out
			}
		}
	}
	engFlips, cluFlips := drain(engCh), drain(cluCh)
	if len(engFlips) != len(cluFlips) {
		t.Fatalf("trigger streams: %d flips (engine) vs %d (cluster)", len(engFlips), len(cluFlips))
	}
	for i := range engFlips {
		if engFlips[i] != cluFlips[i] {
			t.Fatalf("trigger %d: %+v (engine) vs %+v (cluster)", i, engFlips[i], cluFlips[i])
		}
	}
}

// TestBackendConformanceRejection pins failure atomicity: an invalid
// batch is rejected by both backends with the same error class, publishes
// nothing — and, crucially for the cluster, leaves the backend alive for
// subsequent valid batches (workers never see the bad update).
func TestBackendConformanceRejection(t *testing.T) {
	const n = 40
	w := newConfWorld(t, n, 160, 57)
	engSrv, cluSrv := w.servers(2, Config{})

	dup := engine.Update{Kind: engine.EdgeAdd, U: w.edges[0][0], V: w.edges[0][1], Weight: 1}
	missing := engine.Update{Kind: engine.EdgeDelete, U: 1, V: 1}
	outOfRange := engine.Update{Kind: engine.FeatureUpdate, U: graph.VertexID(n + 5), Features: tensor.NewVector(w.model.Dims[0])}
	for name, srv := range map[string]*Server{"engine": engSrv, "cluster": cluSrv} {
		for _, bad := range [][]engine.Update{{dup}, {missing}, {outOfRange}} {
			if _, err := srv.Apply(bad); !errors.Is(err, engine.ErrBadUpdate) {
				t.Fatalf("%s backend: bad batch error = %v, want ErrBadUpdate", name, err)
			}
		}
		if st := srv.Stats(); st.Epoch != 0 || st.Rejected != 3 {
			t.Fatalf("%s backend: epoch %d rejected %d after 3 bad batches", name, st.Epoch, st.Rejected)
		}
	}

	// Both backends must still serve valid traffic afterwards.
	batch := w.batch(4)
	if _, err := engSrv.Apply(batch); err != nil {
		t.Fatalf("engine after rejections: %v", err)
	}
	if _, err := cluSrv.Apply(batch); err != nil {
		t.Fatalf("cluster after rejections: %v", err)
	}
	assertAgreement(t, engSrv, cluSrv, n, "post-rejection")
}

// TestBackendConformanceAdmissionQueue runs the coalescing Submit path —
// including the per-update salvage of a poisoned flush — over both
// backends and checks they converge to the same published state.
func TestBackendConformanceAdmissionQueue(t *testing.T) {
	const n = 50
	w := newConfWorld(t, n, 200, 59)
	engSrv, cluSrv := w.servers(2, Config{MaxBatch: 8, MaxAge: time.Hour})

	var stream []engine.Update
	for b := 0; b < 4; b++ {
		stream = append(stream, w.batch(5)...)
	}
	// Poison one flush with an out-of-range update: the salvage path must
	// keep every valid neighbour on both backends.
	bad := engine.Update{Kind: engine.FeatureUpdate, U: graph.VertexID(n + 1), Features: tensor.NewVector(w.model.Dims[0])}
	stream = append(stream[:7:7], append([]engine.Update{bad}, stream[7:]...)...)

	for _, srv := range []*Server{engSrv, cluSrv} {
		for _, u := range stream {
			if err := srv.Submit(u); err != nil {
				t.Fatal(err)
			}
		}
		srv.Flush()
	}
	est, cst := engSrv.Stats(), cluSrv.Stats()
	if est.Rejected != 1 || cst.Rejected != 1 {
		t.Fatalf("salvage rejections: engine %d, cluster %d, want 1 each", est.Rejected, cst.Rejected)
	}
	if est.UpdatesApplied != cst.UpdatesApplied {
		t.Fatalf("updates applied diverge: %d vs %d", est.UpdatesApplied, cst.UpdatesApplied)
	}
	// Epochs can differ (salvage splits flushes), but the final tables
	// must agree row for row.
	es, cs := engSrv.Snapshot(), cluSrv.Snapshot()
	for v := 0; v < n; v++ {
		id := graph.VertexID(v)
		if es.Label(id) != cs.Label(id) {
			t.Fatalf("vertex %d label %d (engine) vs %d (cluster)", v, es.Label(id), cs.Label(id))
		}
		if d := es.Embedding(id).MaxAbsDiff(cs.Embedding(id)); d > confTol {
			t.Fatalf("vertex %d logits drift %v", v, d)
		}
	}
}
