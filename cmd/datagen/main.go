// Command datagen generates and inspects the synthetic dataset substitutes
// (Table 3 shapes): it prints the shape statistics, a degree histogram,
// and optionally dumps the edge list for external tooling.
//
//	datagen -dataset products -scale 0.01
//	datagen -dataset arxiv -scale 0.25 -out edges.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"ripple/internal/dataset"
	"ripple/internal/graph"
)

func main() {
	ds := flag.String("dataset", "arxiv", "dataset shape: arxiv, reddit, products, papers")
	scale := flag.Float64("scale", 0.05, "fraction of published |V|")
	seed := flag.Int64("seed", 0, "override the dataset's default seed (0 = keep)")
	stream := flag.Int("stream", 0, "also prepare an update stream of this length and report its mix")
	out := flag.String("out", "", "write edge list (u\\tv\\tweight) to this file")
	flag.Parse()

	if err := run(*ds, *scale, *seed, *stream, *out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(ds string, scale float64, seed int64, stream int, out string) error {
	spec, err := dataset.ByName(ds, scale)
	if err != nil {
		return err
	}
	if seed != 0 {
		spec.Seed = seed
	}
	start := time.Now()
	g, _, err := dataset.Generate(spec)
	if err != nil {
		return err
	}
	st := dataset.Measure(spec, g)
	fmt.Printf("dataset   %s (scale %v, seed %d), generated in %v\n", spec.Name, scale, spec.Seed, time.Since(start).Round(time.Millisecond))
	fmt.Printf("vertices  %d\n", st.NumVertices)
	fmt.Printf("edges     %d\n", st.NumEdges)
	fmt.Printf("features  %d\n", st.FeatureDim)
	fmt.Printf("classes   %d\n", st.NumClasses)
	fmt.Printf("avg in-deg %.2f (paper target %.2f)\n", st.AvgInDegree, spec.AvgInDegree)
	fmt.Printf("max in-deg %d\n", st.MaxInDegree)

	// Degree histogram in powers of two.
	hist := map[int]int{}
	maxBucket := 0
	for u := 0; u < g.NumVertices(); u++ {
		d := g.InDegree(graph.VertexID(u))
		b := 0
		for (1 << b) <= d {
			b++
		}
		hist[b]++
		if b > maxBucket {
			maxBucket = b
		}
	}
	fmt.Println("in-degree histogram:")
	for b := 0; b <= maxBucket; b++ {
		lo := 0
		if b > 0 {
			lo = 1 << (b - 1)
		}
		fmt.Printf("  [%6d, %6d): %d\n", lo, 1<<b, hist[b])
	}

	if stream > 0 {
		wl, err := dataset.Build(spec, dataset.StreamConfig{Total: stream, HoldoutFrac: 0.10, Seed: spec.Seed})
		if err != nil {
			return err
		}
		kinds := map[string]int{}
		for _, u := range wl.Updates {
			kinds[u.Kind.String()]++
		}
		fmt.Printf("stream    %d updates: %v (snapshot %d edges)\n", len(wl.Updates), kinds, wl.Snapshot.NumEdges())
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		g.ForEachEdge(func(u, v graph.VertexID, wgt float32) {
			fmt.Fprintf(w, "%d\t%d\t%g\n", u, v, wgt)
		})
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Printf("edge list written to %s\n", out)
	}
	return nil
}
