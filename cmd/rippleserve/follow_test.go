package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"testing"
	"time"
)

// startFollower boots this test binary as a rippleserve replica: -follow
// pointed at a leader's replication listener, optionally durable. A
// follower needs no dataset flags — it has no model or engine.
func startFollower(t *testing.T, addr, leaderRepl, dataDir string) *daemon {
	t.Helper()
	args := []string{"-addr", addr, "-follow", leaderRepl}
	if dataDir != "" {
		args = append(args, "-data-dir", dataDir, "-checkpoint-every", "3")
	}
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "RIPPLESERVE_CHILD=1")
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return &daemon{t: t, cmd: cmd, base: "http://" + addr}
}

// waitCaughtUp polls /healthz until the daemon serves an epoch at or past
// the target with zero reported lag, returning the final healthz body.
func (d *daemon) waitCaughtUp(epoch float64, timeout time.Duration) map[string]any {
	d.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.base + "/healthz")
		if err == nil {
			var body map[string]any
			jerr := json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if jerr == nil && resp.StatusCode == http.StatusOK {
				e, _ := body["epoch"].(float64)
				lag, _ := body["lag_epochs"].(float64)
				if e >= epoch && lag == 0 {
					return body
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	d.t.Fatalf("daemon at %s never caught up to epoch %v", d.base, epoch)
	return nil
}

// TestFollowerReplicationE2E is the replication drill over real
// processes and real loopback TCP: a leader with -replicate-addr, two
// followers (one durable, one memory-only) with -follow, label parity at
// every probed point, writes misdirected off the replica, and a SIGKILL'd
// durable follower recovering from its own checkpoint + WAL tail before
// catching the rest up from the leader.
func TestFollowerReplicationE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes")
	}
	leaderDir, folDir := t.TempDir(), t.TempDir()
	leaderAddr, replAddr := freeLoopbackAddr(t), freeLoopbackAddr(t)
	f1Addr, f2Addr := freeLoopbackAddr(t), freeLoopbackAddr(t)
	const probe = 12

	leader := startDaemon(t, leaderAddr, leaderDir, "-replicate-addr", replAddr)
	defer leader.cmd.Process.Kill()
	leader.waitHealthy(90 * time.Second)

	// Followers join at the bootstrap epoch, before any batch, so the
	// durable one builds its checkpoint/WAL history as epochs stream in.
	f1 := startFollower(t, f1Addr, replAddr, folDir)
	defer f1.cmd.Process.Kill()
	f2 := startFollower(t, f2Addr, replAddr, "")
	defer f2.cmd.Process.Kill()
	f1.waitHealthy(60 * time.Second)
	f2.waitHealthy(60 * time.Second)

	// 7 synchronous batches → epochs 1..7; -checkpoint-every 3 on the
	// durable follower leaves epoch 7 only in its WAL tail.
	for i := 0; i < 7; i++ {
		leader.applySync(i, float64(i)*0.1-0.3)
	}
	wantEpoch := leader.servingStats()["epoch"].(float64)
	wantLabels := leader.labels(probe)

	h1 := f1.waitCaughtUp(wantEpoch, 60*time.Second)
	h2 := f2.waitCaughtUp(wantEpoch, 60*time.Second)
	for i, h := range []map[string]any{h1, h2} {
		if h["role"] != "follower" || h["connected"] != true {
			t.Fatalf("follower %d healthz: %v", i+1, h)
		}
	}
	if got := f1.labels(probe); fmt.Sprint(got) != fmt.Sprint(wantLabels) {
		t.Fatalf("durable follower labels %v, leader %v", got, wantLabels)
	}
	if got := f2.labels(probe); fmt.Sprint(got) != fmt.Sprint(wantLabels) {
		t.Fatalf("memory follower labels %v, leader %v", got, wantLabels)
	}

	// Writes are misdirected on a replica: 421 pointing at the leader.
	resp, err := http.Post(f1.base+"/update?sync=1", "application/json",
		bytes.NewReader([]byte(`{"updates":[{"kind":"edge-delete","u":0,"v":1}]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("write on follower: status %d, want 421", resp.StatusCode)
	}

	// The leader's /stats surfaces the replication hub.
	if st := leader.servingStats(); st["repl_followers"].(float64) != 2 || st["repl_frames_sent"].(float64) == 0 {
		t.Fatalf("leader replication stats: followers=%v frames=%v", st["repl_followers"], st["repl_frames_sent"])
	}

	// Crash drill: SIGKILL the durable follower (no shutdown checkpoint),
	// advance the leader while it is down, reboot on the same data dir.
	if err := f1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	f1.cmd.Wait()
	for i := 0; i < 3; i++ {
		leader.applySync(i, 0.4+float64(i)*0.05)
	}
	wantEpoch = leader.servingStats()["epoch"].(float64)
	wantLabels = leader.labels(probe)

	f1b := startFollower(t, f1Addr, replAddr, folDir)
	defer f1b.cmd.Process.Kill()
	h := f1b.waitCaughtUp(wantEpoch, 60*time.Second)
	if h["recovered_frames"].(float64) == 0 {
		t.Fatalf("restarted follower replayed no WAL frames: %v", h)
	}
	if got := f1b.labels(probe); fmt.Sprint(got) != fmt.Sprint(wantLabels) {
		t.Fatalf("labels after follower crash recovery: %v, want %v", got, wantLabels)
	}

	// The memory-only follower rode the live stream the whole time.
	f2.waitCaughtUp(wantEpoch, 60*time.Second)
	if got := f2.labels(probe); fmt.Sprint(got) != fmt.Sprint(wantLabels) {
		t.Fatalf("memory follower labels after advance: %v, want %v", got, wantLabels)
	}
}
