package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ripple"
	"ripple/internal/obs"
)

// getRaw runs one request through the mux and returns status + raw body.
func getRaw(t *testing.T, h http.Handler, target string) (int, []byte) {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", target, nil))
	return w.Code, w.Body.Bytes()
}

// TestMetricsEndpoint scrapes /metrics on a durable leader and holds it
// to the exposition-format bar: parses and lints clean, ≥30 series, ≥4
// histograms, and counters agreeing with /stats.
func TestMetricsEndpoint(t *testing.T) {
	a := newDurableAPI(t)
	h := a.routes()
	// A couple of synchronous writes so the counters and histograms move.
	for i := 0; i < 3; i++ {
		status, _, _ := do(t, h, "POST", "/update?sync=1",
			fmt.Sprintf(`{"updates": [{"kind": "edge-add", "u": 1, "v": %d}]}`, 5+i))
		if status != http.StatusOK {
			t.Fatalf("update %d: status %d", i, status)
		}
	}

	status, body := getRaw(t, h, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", status)
	}
	exp, err := obs.LintExposition(body)
	if err != nil {
		t.Fatalf("exposition lint: %v\n%s", err, body)
	}
	if n := exp.SeriesCount(); n < 30 {
		t.Errorf("series count = %d, want >= 30", n)
	}
	if n := exp.HistogramCount(); n < 4 {
		t.Errorf("histogram count = %d, want >= 4", n)
	}
	st := a.srv.Load().Stats()
	for name, want := range map[string]float64{
		"ripple_batches_total":     float64(st.Batches),
		"ripple_epoch":             float64(st.Epoch),
		"ripple_wal_appends_total": float64(st.WALAppends),
	} {
		if got, ok := exp.Value(name); !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", name, got, ok, want)
		}
	}
}

// TestMetricsBeforeReady pins the starting behaviour: an api whose role
// has not come up yet answers 503, not an empty exposition.
func TestMetricsBeforeReady(t *testing.T) {
	h := (&api{n: testN, classes: testClasses}).routes()
	if status, _ := getRaw(t, h, "/metrics"); status != http.StatusServiceUnavailable {
		t.Fatalf("GET /metrics before ready: status %d, want 503", status)
	}
}

// TestMetricsFollower scrapes /metrics in -follow mode (in-process
// follower against an in-process replication leader).
func TestMetricsFollower(t *testing.T) {
	leader := newDurableAPI(t)
	repl, err := leader.srv.Load().StartReplication("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fol, err := ripple.Follow(repl.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fol.Close)
	<-fol.Ready()
	a := &api{leader: repl.Addr()}
	a.fol.Store(fol)
	h := a.routes()

	status, body := getRaw(t, h, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET /metrics (follower): status %d", status)
	}
	exp, err := obs.LintExposition(body)
	if err != nil {
		t.Fatalf("follower exposition lint: %v\n%s", err, body)
	}
	if n := exp.SeriesCount(); n < 30 {
		t.Errorf("follower series count = %d, want >= 30", n)
	}
	if got, _ := exp.Value("ripple_follower_ready"); got != 1 {
		t.Errorf("ripple_follower_ready = %v, want 1", got)
	}
	// And the flight recorder is a leader-only surface.
	if status, _ := getRaw(t, h, "/debug/traces"); status != http.StatusNotFound {
		t.Errorf("GET /debug/traces (follower): status %d, want 404", status)
	}
}

// TestTracesEndpoint drives durable writes and checks /debug/traces
// returns the full stage-span timeline for them: every pipeline stage
// named, timestamps monotone, filterable by min duration.
func TestTracesEndpoint(t *testing.T) {
	a := newDurableAPI(t)
	h := a.routes()
	const writes = 4
	for i := 0; i < writes; i++ {
		status, _, _ := do(t, h, "POST", "/update?sync=1",
			fmt.Sprintf(`{"updates": [{"kind": "edge-add", "u": 2, "v": %d}]}`, 7+i))
		if status != http.StatusOK {
			t.Fatalf("update %d: status %d", i, status)
		}
	}

	status, raw := getRaw(t, h, "/debug/traces")
	if status != http.StatusOK {
		t.Fatalf("GET /debug/traces: status %d: %s", status, raw)
	}
	var body struct {
		Count  int `json:"count"`
		Traces []struct {
			Seq     uint64 `json:"seq"`
			Epoch   uint64 `json:"epoch"`
			Updates int    `json:"updates"`
			TotalNS int64  `json:"total_ns"`
			Stages  []struct {
				Stage   string `json:"stage"`
				StartNS int64  `json:"start_ns"`
				EndNS   int64  `json:"end_ns"`
				DurNS   int64  `json:"dur_ns"`
			} `json:"stages"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("decoding traces: %v\n%s", err, raw)
	}
	if body.Count != writes || len(body.Traces) != writes {
		t.Fatalf("count = %d (traces %d), want %d", body.Count, len(body.Traces), writes)
	}
	wantStages := []string{"admit", "wal_append", "durable", "apply", "publish", "replicate", "fanout"}
	for i, tr := range body.Traces {
		if tr.Epoch != uint64(i+1) {
			t.Errorf("trace %d: epoch %d, want %d", i, tr.Epoch, i+1)
		}
		if len(tr.Stages) != len(wantStages) {
			t.Fatalf("trace %d: %d stages, want %d", i, len(tr.Stages), len(wantStages))
		}
		prevEnd := int64(0)
		for j, sp := range tr.Stages {
			if sp.Stage != wantStages[j] {
				t.Errorf("trace %d stage %d: %q, want %q", i, j, sp.Stage, wantStages[j])
			}
			if sp.StartNS < prevEnd || sp.EndNS < sp.StartNS || sp.DurNS != sp.EndNS-sp.StartNS {
				t.Errorf("trace %d stage %s: span [%d,%d] dur %d not monotone", i, sp.Stage, sp.StartNS, sp.EndNS, sp.DurNS)
			}
			prevEnd = sp.EndNS
		}
		if tr.TotalNS <= 0 {
			t.Errorf("trace %d: total_ns = %d", i, tr.TotalNS)
		}
	}

	// min filter: 1h keeps nothing, bad durations are 400.
	if _, raw := getRaw(t, h, "/debug/traces?min=1h"); !strings.Contains(string(raw), `"count":0`) {
		t.Errorf("min=1h body = %s, want count 0", raw)
	}
	if status, _ := getRaw(t, h, "/debug/traces?min=banana"); status != http.StatusBadRequest {
		t.Errorf("min=banana: status %d, want 400", status)
	}
}
