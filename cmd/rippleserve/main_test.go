package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"ripple"
)

const (
	testN       = 24
	testFeatDim = 6
	testClasses = 4
)

// testWorld builds the deterministic graph/model/features the handler
// tests run over.
func testWorld(t *testing.T) (*ripple.Graph, *ripple.Model, []ripple.Vector) {
	t.Helper()
	g := ripple.NewGraph(testN)
	for v := 0; v < testN-1; v++ {
		if err := g.AddEdge(ripple.VertexID(v), ripple.VertexID(v+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	features := make([]ripple.Vector, testN)
	for v := range features {
		features[v] = ripple.NewVector(testFeatDim)
		for j := range features[v] {
			features[v][j] = float32(v*testFeatDim+j)/100 - 0.5
		}
	}
	model, err := ripple.NewModel("GS-S", []int{testFeatDim, 8, testClasses}, 7)
	if err != nil {
		t.Fatal(err)
	}
	return g, model, features
}

// newTestAPI builds the handler set over a small deterministic engine.
func newTestAPI(t *testing.T) *api {
	t.Helper()
	g, model, features := testWorld(t)
	eng, err := ripple.Bootstrap(g, model, features)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ripple.Serve(eng)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	a := &api{n: testN, classes: testClasses, workload: "GS-S", dataset: "test"}
	a.srv.Store(srv)
	return a
}

// newDistributedAPI builds the same handler set over a 3-worker cluster
// backend — the -workers 3 deployment.
func newDistributedAPI(t *testing.T) *api {
	t.Helper()
	g, model, features := testWorld(t)
	srv, err := ripple.ServeCluster(g, model, features,
		ripple.DistOptions{Workers: 3, Partitioner: "hash"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	a := &api{n: testN, classes: testClasses, workload: "GS-S", dataset: "test", workers: 3}
	a.srv.Store(srv)
	return a
}

// newDurableAPI builds the handler set over a durable single-node server
// rooted at a fresh data dir.
func newDurableAPI(t *testing.T) *api {
	t.Helper()
	g, model, features := testWorld(t)
	eng, err := ripple.Bootstrap(g, model, features)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ripple.Serve(eng, ripple.WithDataDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	a := &api{n: testN, classes: testClasses, workload: "GS-S", dataset: "test", durable: true}
	a.srv.Store(srv)
	return a
}

// do runs one request through the mux and decodes the JSON response body.
func do(t *testing.T, h http.Handler, method, target, body string) (int, string, map[string]any) {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, target, nil)
	} else {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	raw := w.Body.String()
	var decoded map[string]any
	if err := json.Unmarshal([]byte(raw), &decoded); err != nil {
		t.Fatalf("%s %s: non-JSON response %q: %v", method, target, raw, err)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("%s %s: Content-Type %q", method, target, ct)
	}
	return w.Code, raw, decoded
}

func TestHandleLabel(t *testing.T) {
	h := newTestAPI(t).routes()
	code, _, body := do(t, h, "GET", "/label/3", "")
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200", code)
	}
	label, ok := body["label"].(float64)
	if !ok || label < 0 || int(label) >= testClasses {
		t.Fatalf("label = %v, want class in [0,%d)", body["label"], testClasses)
	}
	if body["vertex"].(float64) != 3 || body["epoch"].(float64) != 0 {
		t.Fatalf("body %v", body)
	}
}

func TestHandleLabelUnknownVertexIs404(t *testing.T) {
	h := newTestAPI(t).routes()
	for _, target := range []string{"/label/9999", "/label/-1", "/label/abc"} {
		code, raw, body := do(t, h, "GET", target, "")
		if code != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", target, code)
		}
		if body["error"] == nil {
			t.Fatalf("GET %s: no error field in %q", target, raw)
		}
		if strings.Contains(raw, "null") {
			t.Fatalf("GET %s: null leaked into %q", target, raw)
		}
	}
}

func TestHandleTopK(t *testing.T) {
	h := newTestAPI(t).routes()
	code, raw, body := do(t, h, "GET", "/topk/5?k=2", "")
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200", code)
	}
	topk, ok := body["topk"].([]any)
	if !ok {
		t.Fatalf("topk is %T (%q), want array", body["topk"], raw)
	}
	if len(topk) != 2 {
		t.Fatalf("topk has %d entries, want 2", len(topk))
	}
	head := topk[0].(map[string]any)
	if _, ok := head["class"]; !ok {
		t.Fatalf("topk entry %v lacks class", head)
	}
	// Default k and k clamped above the class count still return arrays.
	if code, _, body := do(t, h, "GET", "/topk/5", ""); code != 200 || len(body["topk"].([]any)) != 3 {
		t.Fatalf("default k: status %d body %v", code, body)
	}
	if code, _, body := do(t, h, "GET", "/topk/5?k=99", ""); code != 200 || len(body["topk"].([]any)) != testClasses {
		t.Fatalf("clamped k: status %d body %v", code, body)
	}
}

func TestHandleTopKBadK(t *testing.T) {
	h := newTestAPI(t).routes()
	for _, target := range []string{"/topk/5?k=0", "/topk/5?k=-2", "/topk/5?k=three"} {
		if code, _, _ := do(t, h, "GET", target, ""); code != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400", target, code)
		}
	}
}

// TestRemovedVertexIs404 checks tombstoned vertices are not served as
// live predictions: an in-range vertex whose snapshot label is -1 must
// 404 on both /label and /topk instead of returning -1 as a class id or
// a ranking fabricated from its zeroed features.
func TestRemovedVertexIs404(t *testing.T) {
	g := ripple.NewGraph(testN)
	for v := 0; v < testN-1; v++ {
		if err := g.AddEdge(ripple.VertexID(v), ripple.VertexID(v+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	features := make([]ripple.Vector, testN)
	for v := range features {
		features[v] = ripple.NewVector(testFeatDim)
		features[v][0] = float32(v)
	}
	model, err := ripple.NewModel("GS-S", []int{testFeatDim, 8, testClasses}, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ripple.Bootstrap(g, model, features)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RemoveVertex(9); err != nil {
		t.Fatal(err)
	}
	srv, err := ripple.Serve(eng)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	a := &api{n: testN, classes: testClasses, workload: "GS-S", dataset: "test"}
	a.srv.Store(srv)
	h := a.routes()
	for _, target := range []string{"/label/9", "/topk/9?k=2"} {
		code, raw, _ := do(t, h, "GET", target, "")
		if code != http.StatusNotFound {
			t.Fatalf("GET %s on removed vertex: status %d (%q), want 404", target, code, raw)
		}
	}
	// Neighbouring live vertices still serve.
	if code, _, _ := do(t, h, "GET", "/label/8", ""); code != http.StatusOK {
		t.Fatalf("live vertex broken by neighbour removal: %d", code)
	}
}

func TestHandleTopKUnknownVertexIs404NotNull(t *testing.T) {
	h := newTestAPI(t).routes()
	code, raw, _ := do(t, h, "GET", "/topk/9999?k=3", "")
	if code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", code)
	}
	if strings.Contains(raw, "null") {
		t.Fatalf("null leaked into 404 body %q", raw)
	}
}

func TestHandleUpdateRejections(t *testing.T) {
	h := newTestAPI(t).routes()
	cases := []struct {
		name, body string
		want       int
	}{
		{"bad JSON", `{"updates": [`, http.StatusBadRequest},
		{"no updates", `{"updates": []}`, http.StatusBadRequest},
		{"unknown kind", `{"updates": [{"kind": "vertex-warp", "u": 1, "v": 2}]}`, http.StatusBadRequest},
		{"sync duplicate edge", `{"updates": [{"kind": "edge-add", "u": 0, "v": 1, "weight": 1}]}`, http.StatusUnprocessableEntity},
		{"sync out-of-range vertex", `{"updates": [{"kind": "edge-add", "u": 0, "v": 9999}]}`, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		target := "/update?sync=1"
		if c.want == http.StatusBadRequest {
			target = "/update"
		}
		if code, raw, _ := do(t, h, "POST", target, c.body); code != c.want {
			t.Fatalf("%s: status %d (%q), want %d", c.name, code, raw, c.want)
		}
	}
}

func TestHandleUpdateSyncAndAsync(t *testing.T) {
	a := newTestAPI(t)
	h := a.routes()
	code, _, body := do(t, h, "POST", "/update?sync=1",
		`{"updates": [{"kind": "feature-update", "u": 2, "features": [1, 0, 0, 0, 0, 0]}]}`)
	if code != http.StatusOK || body["applied"].(float64) != 1 {
		t.Fatalf("sync apply: status %d body %v", code, body)
	}
	if body["epoch"].(float64) != 1 {
		t.Fatalf("sync apply did not publish an epoch: %v", body)
	}
	code, _, body = do(t, h, "POST", "/update",
		`{"updates": [{"kind": "edge-add", "u": 5, "v": 2}]}`)
	if code != http.StatusAccepted || body["queued"].(float64) != 1 {
		t.Fatalf("async submit: status %d body %v", code, body)
	}
	a.srv.Load().Flush()
	if got := a.srv.Load().Stats().UpdatesApplied; got != 2 {
		t.Fatalf("applied %d updates end to end, want 2", got)
	}
}

func TestHandleUpdateAfterCloseIs503(t *testing.T) {
	a := newTestAPI(t)
	a.srv.Load().Close()
	code, _, _ := do(t, a.routes(), "POST", "/update",
		`{"updates": [{"kind": "feature-update", "u": 1, "features": [0, 0, 0, 0, 0, 0]}]}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit after close: status %d, want 503", code)
	}
}

// TestDistributedModeServesCorrectAnswers runs the full handler surface
// over a 3-worker cluster backend and checks /label and /topk answer
// exactly what a single-node deployment answers for the same world and
// update stream — the acceptance bar for `rippleserve -workers 3`.
func TestDistributedModeServesCorrectAnswers(t *testing.T) {
	single := newTestAPI(t)
	dist := newDistributedAPI(t)
	hs, hd := single.routes(), dist.routes()

	updates := []string{
		`{"updates": [{"kind": "feature-update", "u": 2, "features": [2, 0, 0, 0, 0, 0]}]}`,
		`{"updates": [{"kind": "edge-add", "u": 7, "v": 2, "weight": 1}]}`,
		`{"updates": [{"kind": "edge-delete", "u": 3, "v": 4}]}`,
	}
	for i, body := range updates {
		for name, h := range map[string]http.Handler{"single": hs, "distributed": hd} {
			if code, raw, _ := do(t, h, "POST", "/update?sync=1", body); code != http.StatusOK {
				t.Fatalf("%s update %d: status %d (%q)", name, i, code, raw)
			}
		}
	}
	for v := 0; v < testN; v++ {
		target := "/label/" + strconv.Itoa(v)
		codeS, _, bodyS := do(t, hs, "GET", target, "")
		codeD, _, bodyD := do(t, hd, "GET", target, "")
		if codeS != codeD || bodyS["label"] != bodyD["label"] || bodyS["epoch"] != bodyD["epoch"] {
			t.Fatalf("GET %s: single %d/%v, distributed %d/%v", target, codeS, bodyS, codeD, bodyD)
		}
		target = "/topk/" + strconv.Itoa(v) + "?k=2"
		_, _, bodyS = do(t, hs, "GET", target, "")
		_, _, bodyD = do(t, hd, "GET", target, "")
		ranksS, ranksD := bodyS["topk"].([]any), bodyD["topk"].([]any)
		if len(ranksS) != len(ranksD) {
			t.Fatalf("GET %s: topk sizes %d vs %d", target, len(ranksS), len(ranksD))
		}
		for i := range ranksS {
			cs := ranksS[i].(map[string]any)["class"]
			cd := ranksD[i].(map[string]any)["class"]
			if cs != cd {
				t.Fatalf("GET %s: rank %d class %v (single) vs %v (distributed)", target, i, cs, cd)
			}
		}
	}

	// A batch rejected by leader-side validation must not break serving.
	if code, _, _ := do(t, hd, "POST", "/update?sync=1",
		`{"updates": [{"kind": "edge-add", "u": 0, "v": 1, "weight": 1}]}`); code != http.StatusUnprocessableEntity {
		t.Fatalf("distributed duplicate edge-add: status %d, want 422", code)
	}
	if code, _, _ := do(t, hd, "GET", "/label/0", ""); code != http.StatusOK {
		t.Fatalf("distributed serving broken after rejected batch: %d", code)
	}

	// The comm counters surface at /stats in distributed mode only.
	_, _, stats := do(t, hd, "GET", "/stats", "")
	if stats["workers"].(float64) != 3 {
		t.Fatalf("stats workers = %v", stats["workers"])
	}
	serving := stats["serving"].(map[string]any)
	for _, key := range []string{"comm_bytes", "comm_msgs", "route_bytes", "gather_bytes"} {
		if serving[key].(float64) <= 0 {
			t.Fatalf("distributed serving stats %s = %v, want > 0", key, serving[key])
		}
	}
	_, _, stats = do(t, hs, "GET", "/stats", "")
	if c := stats["serving"].(map[string]any)["comm_bytes"].(float64); c != 0 {
		t.Fatalf("single-node comm_bytes = %v, want 0", c)
	}
}

func TestHandleStatsAndCompact(t *testing.T) {
	h := newTestAPI(t).routes()
	if code, _, _ := do(t, h, "POST", "/update?sync=1",
		`{"updates": [{"kind": "feature-update", "u": 0, "features": [1, 1, 1, 1, 1, 1]}]}`); code != 200 {
		t.Fatalf("seeding update failed with %d", code)
	}
	code, _, body := do(t, h, "GET", "/stats", "")
	if code != http.StatusOK || body["dataset"] != "test" || body["vertices"].(float64) != testN {
		t.Fatalf("stats: status %d body %v", code, body)
	}
	serving := body["serving"].(map[string]any)
	for _, key := range []string{"epoch", "batches", "pages_copied", "pages_shared",
		"scatter_shards", "scatter_hops_parallel", "scatter_hops_serial"} {
		if _, ok := serving[key]; !ok {
			t.Fatalf("serving stats missing %q: %v", key, serving)
		}
	}
	if serving["scatter_shards"].(float64) < 1 {
		t.Fatalf("scatter_shards = %v, want ≥ 1", serving["scatter_shards"])
	}
	// One applied batch over a 2-layer model: both hops accounted, to
	// exactly one scatter path each.
	if hops := serving["scatter_hops_parallel"].(float64) + serving["scatter_hops_serial"].(float64); hops != 2 {
		t.Fatalf("scatter hop accounting %v parallel + %v serial, want 2 total",
			serving["scatter_hops_parallel"], serving["scatter_hops_serial"])
	}
	code, _, body = do(t, h, "POST", "/compact", "")
	if code != http.StatusOK {
		t.Fatalf("compact: status %d", code)
	}
	pages := body["pages"].(map[string]any)
	if pages["page_rows"].(float64) <= 0 || pages["pages"].(float64) <= 0 {
		t.Fatalf("compact accounting %v", pages)
	}
	if pages["epoch"].(float64) != 1 {
		t.Fatalf("compact accounting taken at epoch %v, want the published epoch 1", pages["epoch"])
	}
	if code, _, body := do(t, h, "GET", "/healthz", ""); code != 200 || body["status"] != "ok" {
		t.Fatalf("healthz: status %d body %v", code, body)
	}
}

// TestStartingStateIs503: before bootstrap/recovery publishes the first
// epoch (the listener comes up first), every data endpoint — healthz
// included — answers 503 "starting" instead of connection-refused or a
// nil-server panic.
func TestStartingStateIs503(t *testing.T) {
	h := (&api{n: testN, classes: testClasses, workload: "GS-S", dataset: "test", durable: true}).routes()
	for _, probe := range []struct{ method, target string }{
		{"GET", "/healthz"},
		{"GET", "/label/3"},
		{"GET", "/topk/3"},
		{"GET", "/stats"},
		{"POST", "/checkpoint"},
	} {
		code, _, body := do(t, h, probe.method, probe.target, "")
		if code != http.StatusServiceUnavailable || body["status"] != "starting" {
			t.Fatalf("%s %s before startup: status %d body %v, want 503 starting", probe.method, probe.target, code, body)
		}
	}
	if code, _, _ := do(t, h, "POST", "/update?sync=1",
		`{"updates": [{"kind": "feature-update", "u": 0, "features": [1, 1, 1, 1, 1, 1]}]}`); code != http.StatusServiceUnavailable {
		t.Fatalf("update before startup: status %d, want 503", code)
	}
}

// TestHandleCheckpoint covers the durability endpoint: a conflict on a
// non-durable server, and on a durable one a checkpoint cut at the
// current epoch with the WAL truncated behind it and the durability
// counters surfaced through /stats and /healthz.
func TestHandleCheckpoint(t *testing.T) {
	h := newTestAPI(t).routes()
	if code, _, _ := do(t, h, "POST", "/checkpoint", ""); code != http.StatusConflict {
		t.Fatalf("non-durable checkpoint: status %d, want 409", code)
	}

	h = newDurableAPI(t).routes()
	if code, _, _ := do(t, h, "POST", "/update?sync=1",
		`{"updates": [{"kind": "feature-update", "u": 0, "features": [1, 1, 1, 1, 1, 1]}]}`); code != 200 {
		t.Fatalf("seeding update failed with %d", code)
	}
	code, _, body := do(t, h, "POST", "/checkpoint", "")
	if code != http.StatusOK {
		t.Fatalf("checkpoint: status %d body %v", code, body)
	}
	ckpt := body["checkpoint"].(map[string]any)
	if ckpt["epoch"].(float64) != 1 || ckpt["bytes"].(float64) <= 0 || ckpt["wal_bytes"].(float64) != 0 {
		t.Fatalf("checkpoint accounting %v: want epoch 1, a real file, an empty WAL", ckpt)
	}
	code, _, body = do(t, h, "GET", "/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	serving := body["serving"].(map[string]any)
	for _, key := range []string{"wal_bytes", "wal_segments", "last_checkpoint_epoch", "recovered_batches"} {
		if _, ok := serving[key]; !ok {
			t.Fatalf("serving stats missing %q: %v", key, serving)
		}
	}
	if serving["last_checkpoint_epoch"].(float64) != 1 {
		t.Fatalf("last_checkpoint_epoch = %v, want 1", serving["last_checkpoint_epoch"])
	}
	if code, _, body := do(t, h, "GET", "/healthz", ""); code != 200 || body["last_checkpoint_epoch"].(float64) != 1 {
		t.Fatalf("healthz: status %d body %v", code, body)
	}
}
