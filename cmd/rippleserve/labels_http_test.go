package main

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestHandleTopKAbsurdKIs400: a k orders of magnitude beyond any class
// space is a malformed request (400), while a merely-large k keeps
// degrading gracefully to the full class ranking.
func TestHandleTopKAbsurdKIs400(t *testing.T) {
	h := newTestAPI(t).routes()
	for _, target := range []string{"/topk/5?k=5000", "/topk/5?k=1000000000"} {
		code, raw, body := do(t, h, "GET", target, "")
		if code != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d (%q), want 400", target, code, raw)
		}
		if body["error"] == nil {
			t.Fatalf("GET %s: no error field in %q", target, raw)
		}
	}
	// The boundary itself is still served, clamped to the class count.
	if code, _, body := do(t, h, "GET", "/topk/5?k=4096", ""); code != 200 || len(body["topk"].([]any)) != testClasses {
		t.Fatalf("k at limit: status %d body %v", code, body)
	}
}

// TestHandleUpdateOversizedIs413: a body past the 8 MiB admission limit
// must answer 413 "split the batch", not masquerade as a JSON syntax
// error (the shape MaxBytesReader truncation takes by default).
func TestHandleUpdateOversizedIs413(t *testing.T) {
	h := newTestAPI(t).routes()
	body := `{"pad": "` + strings.Repeat("x", 9<<20) + `", "updates": []}`
	code, raw, decoded := do(t, h, "POST", "/update", body)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized update: status %d (%.80q), want 413", code, raw)
	}
	if msg, _ := decoded["error"].(string); !strings.Contains(msg, "split the batch") {
		t.Fatalf("413 body should tell the client to split the batch: %q", raw)
	}
}

// TestHandleUpdateAsyncAllOrNothing: a rejected async batch queues
// NOTHING — the 503 body carries queued 0 as a guarantee, and the
// admission queue holds no partial prefix a retry could double-apply.
func TestHandleUpdateAsyncAllOrNothing(t *testing.T) {
	a := newTestAPI(t)
	a.srv.Load().Close()
	code, raw, body := do(t, a.routes(), "POST", "/update",
		`{"updates": [
			{"kind": "edge-add", "u": 5, "v": 2},
			{"kind": "edge-add", "u": 6, "v": 2},
			{"kind": "feature-update", "u": 1, "features": [0, 0, 0, 0, 0, 0]}
		]}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("async submit after close: status %d (%q), want 503", code, raw)
	}
	queued, ok := body["queued"].(float64)
	if !ok || queued != 0 {
		t.Fatalf("503 body must guarantee queued 0, got %q", raw)
	}
	if pending := a.srv.Load().Stats().Pending; pending != 0 {
		t.Fatalf("rejected batch left %d updates in the admission queue", pending)
	}
}

// failingWriter simulates a client that went away: every body write
// fails. Headers still collect so writeJSON can run its full path.
type failingWriter struct{ header http.Header }

func (f *failingWriter) Header() http.Header       { return f.header }
func (f *failingWriter) WriteHeader(int)           {}
func (f *failingWriter) Write([]byte) (int, error) { return 0, errors.New("broken pipe") }

// TestWriteJSONEncodeErrorsCounted: a response body that fails to
// serialize is no longer silently dropped — it increments the counter
// surfaced as encode_errors in /stats.
func TestWriteJSONEncodeErrorsCounted(t *testing.T) {
	a := newTestAPI(t)
	// Transport failure: the write side of Encode errors.
	a.writeJSON(&failingWriter{header: http.Header{}}, http.StatusOK, map[string]any{"ok": true})
	// Marshal failure: the value itself cannot be encoded.
	a.writeJSON(httptest.NewRecorder(), http.StatusOK, map[string]any{"f": func() {}})
	if got := a.encodeErrs.Load(); got != 2 {
		t.Fatalf("encodeErrs = %d, want 2", got)
	}
	code, raw, body := do(t, a.routes(), "GET", "/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if body["encode_errors"].(float64) != 2 {
		t.Fatalf("stats encode_errors = %v, want 2 (%q)", body["encode_errors"], raw)
	}
}

// TestHandleLabels: the batched read returns one row per requested id in
// request order, every row from ONE epoch, with out-of-range ids folded
// in as label -1 instead of failing the batch.
func TestHandleLabels(t *testing.T) {
	h := newTestAPI(t).routes()
	code, raw, body := do(t, h, "POST", "/labels", `{"ids": [3, 9999, -1, 0, 3]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d (%q), want 200", code, raw)
	}
	if _, ok := body["epoch"].(float64); !ok {
		t.Fatalf("no epoch in %q", raw)
	}
	rows, ok := body["rows"].([]any)
	if !ok || len(rows) != 5 {
		t.Fatalf("rows = %v, want 5 entries", body["rows"])
	}
	wantVertex := []float64{3, 9999, -1, 0, 3}
	for i, r := range rows {
		row := r.(map[string]any)
		if row["vertex"].(float64) != wantVertex[i] {
			t.Fatalf("rows[%d].vertex = %v, want %v (order must follow the request)", i, row["vertex"], wantVertex[i])
		}
	}
	if rows[1].(map[string]any)["label"].(float64) != -1 || rows[2].(map[string]any)["label"].(float64) != -1 {
		t.Fatalf("out-of-range ids must fold in as label -1: %q", raw)
	}
	// In-range rows agree with the single-id endpoint.
	for _, i := range []int{0, 3, 4} {
		row := rows[i].(map[string]any)
		target := "/label/" + strconv.Itoa(int(row["vertex"].(float64)))
		_, _, single := do(t, h, "GET", target, "")
		if row["label"] != single["label"] {
			t.Fatalf("batched label %v for %s disagrees with single read %v", row["label"], target, single["label"])
		}
	}
}

// TestHandleLabelsBinary: with Accept: application/octet-stream the rows
// come back as little-endian {u32 vertex, i32 label} pairs after a u64
// epoch — cross-checked row for row against the JSON mode.
func TestHandleLabelsBinary(t *testing.T) {
	h := newTestAPI(t).routes()
	const reqBody = `{"ids": [0, 7, 9999, 3]}`

	r := httptest.NewRequest("POST", "/labels", strings.NewReader(reqBody))
	r.Header.Set("Accept", "application/octet-stream")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("binary /labels: status %d (%q)", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("binary /labels: Content-Type %q", ct)
	}
	raw := w.Body.Bytes()
	const nids = 4
	if len(raw) != 8+8*nids {
		t.Fatalf("binary body is %d bytes, want %d", len(raw), 8+8*nids)
	}
	epoch := binary.LittleEndian.Uint64(raw)

	_, _, jsonBody := do(t, h, "POST", "/labels", reqBody)
	if uint64(jsonBody["epoch"].(float64)) != epoch {
		t.Fatalf("binary epoch %d, JSON epoch %v", epoch, jsonBody["epoch"])
	}
	rows := jsonBody["rows"].([]any)
	for i := 0; i < nids; i++ {
		vertex := binary.LittleEndian.Uint32(raw[8+8*i:])
		label := int32(binary.LittleEndian.Uint32(raw[12+8*i:]))
		row := rows[i].(map[string]any)
		if uint32(row["vertex"].(float64)) != vertex || int32(row["label"].(float64)) != label {
			t.Fatalf("binary row %d = {%d, %d}, JSON row %v", i, vertex, label, row)
		}
	}
	if got := int32(binary.LittleEndian.Uint32(raw[12+8*2:])); got != -1 {
		t.Fatalf("binary row for out-of-range id 9999 has label %d, want -1", got)
	}
}

// TestHandleLabelsRejections: malformed, empty, oversized-count and
// oversized-body requests are all refused before touching a snapshot.
func TestHandleLabelsRejections(t *testing.T) {
	h := newTestAPI(t).routes()

	var many strings.Builder
	many.WriteString(`{"ids": [`)
	for i := 0; i <= maxLabelBatch; i++ {
		if i > 0 {
			many.WriteByte(',')
		}
		many.WriteString(strconv.Itoa(i))
	}
	many.WriteString(`]}`)

	cases := []struct {
		name, body string
		want       int
	}{
		{"bad JSON", `{"ids": [`, http.StatusBadRequest},
		{"no ids", `{"ids": []}`, http.StatusBadRequest},
		{"missing ids", `{}`, http.StatusBadRequest},
		{"too many ids", many.String(), http.StatusBadRequest},
		{"oversized body", `{"pad": "` + strings.Repeat("x", 5<<20) + `", "ids": [1]}`, http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		if code, raw, _ := do(t, h, "POST", "/labels", c.body); code != c.want {
			t.Fatalf("%s: status %d (%.80q), want %d", c.name, code, raw, c.want)
		}
	}
}

// TestHandleLabelsBinaryAllocs pins the allocation behaviour of the
// batched binary read end to end: the request-size-independent overhead
// (decoder, recorder, header map) is allowed, but nothing may scale with
// the 1000 requested ids — the pooled scratch absorbs ids, labels and
// the response bytes.
func TestHandleLabelsBinaryAllocs(t *testing.T) {
	a := newTestAPI(t)
	var req bytes.Buffer
	req.WriteString(`{"ids": [`)
	for i := 0; i < 1000; i++ {
		if i > 0 {
			req.WriteByte(',')
		}
		req.WriteString(strconv.Itoa(i % (testN + 2)))
	}
	req.WriteString(`]}`)
	reqBody := req.Bytes()

	run := func() {
		r := httptest.NewRequest("POST", "/labels", bytes.NewReader(reqBody))
		r.Header.Set("Accept", "application/octet-stream")
		w := httptest.NewRecorder()
		a.handleLabels(w, r)
		if w.Code != http.StatusOK {
			t.Fatalf("binary /labels: status %d (%.120q)", w.Code, w.Body.String())
		}
	}
	run() // warm the scratch pool before measuring
	allocs := testing.AllocsPerRun(50, run)
	if allocs > 100 {
		t.Errorf("binary /labels with 1000 ids allocated %v times per request — scales with ids, want O(1) overhead only", allocs)
	}
}
