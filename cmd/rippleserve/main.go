// Command rippleserve is an HTTP prediction service over the
// snapshot-isolated serving layer: the paper's trigger-based inference
// engine (§2.2) put behind a production-shaped read/write API.
//
// It bootstraps a synthetic dataset (the offline substitute for OGB, see
// DESIGN.md §1), runs the incremental engine behind internal/serve —
// single-node by default, or partitioned across an in-process distributed
// cluster with -workers N (-partitioner picks placement); epochs are then
// published from the leader's delta gather and /stats additionally
// reports comm_bytes/comm_msgs/route_bytes/gather_bytes — and exposes:
//
//	GET  /label/{v}        current predicted class of vertex v
//	GET  /topk/{v}?k=3     v's k best classes with logit scores
//	POST /update[?sync=1]  stream graph updates (JSON; see below)
//	POST /compact          defragment the paged snapshot; page accounting
//	GET  /healthz          liveness + current epoch
//	GET  /stats            serving counters (epochs, batches, flips, pages, ...)
//
// Reads are lock-free snapshot reads: they never block behind an applying
// batch and always observe a whole published epoch. Writes are coalesced
// by the admission queue (flush on -batch size or -delay age); ?sync=1
// bypasses the queue and returns the applied batch's cost.
//
// Update JSON: {"updates": [
//
//	{"kind": "edge-add", "u": 1, "v": 2, "weight": 1.0},
//	{"kind": "edge-delete", "u": 2, "v": 1},
//	{"kind": "feature-update", "u": 3, "features": [0.1, -0.4, ...]}
//
// ]}
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"ripple"
	"ripple/internal/dataset"
)

func main() {
	addr := flag.String("addr", ":8090", "HTTP listen address")
	ds := flag.String("dataset", "arxiv", "dataset shape: arxiv, reddit, products, papers")
	scale := flag.Float64("scale", 0.05, "dataset scale (fraction of published |V|)")
	workload := flag.String("workload", "GS-S", "model workload: GC-S, GS-S, GC-M, GI-S, GC-W")
	layers := flag.Int("layers", 2, "GNN layers")
	hidden := flag.Int("hidden", 64, "hidden width")
	seed := flag.Int64("seed", 42, "generation seed")
	batch := flag.Int("batch", 128, "admission queue flush size")
	delay := flag.Duration("delay", 2*time.Millisecond, "admission queue flush age")
	workers := flag.Int("workers", 0, "distributed mode: partition across this many in-process workers (0 = single-node engine)")
	partitioner := flag.String("partitioner", "multilevel", "distributed mode placement: multilevel, ldg or hash")
	flag.Parse()

	cfg := serveConfig{
		Addr: *addr, Dataset: *ds, Scale: *scale, Workload: *workload,
		Layers: *layers, Hidden: *hidden, Seed: *seed,
		Batch: *batch, Delay: *delay, Workers: *workers, Partitioner: *partitioner,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "rippleserve:", err)
		os.Exit(1)
	}
}

// serveConfig carries the daemon's flags.
type serveConfig struct {
	Addr        string
	Dataset     string
	Scale       float64
	Workload    string
	Layers      int
	Hidden      int
	Seed        int64
	Batch       int
	Delay       time.Duration
	Workers     int // 0 = single-node engine backend
	Partitioner string
}

func run(cfg serveConfig) error {
	spec, err := dataset.ByName(cfg.Dataset, cfg.Scale)
	if err != nil {
		return err
	}
	spec.Seed = cfg.Seed
	log.Printf("generating %s at scale %v (%d vertices, ~%d edges)...", cfg.Dataset, cfg.Scale, spec.NumVertices, spec.NumEdges())
	g, features, err := dataset.Generate(spec)
	if err != nil {
		return err
	}
	dims := []int{spec.FeatureDim}
	for i := 1; i < cfg.Layers; i++ {
		dims = append(dims, cfg.Hidden)
	}
	dims = append(dims, spec.NumClasses)
	model, err := ripple.NewModel(cfg.Workload, dims, cfg.Seed)
	if err != nil {
		return err
	}
	var srv *ripple.Server
	if cfg.Workers > 0 {
		log.Printf("bootstrapping %s over %d vertices across %d workers (%s partitioning)...",
			model, spec.NumVertices, cfg.Workers, cfg.Partitioner)
		srv, err = ripple.ServeCluster(g, model, features,
			ripple.DistOptions{Workers: cfg.Workers, Partitioner: cfg.Partitioner},
			ripple.WithAdmission(cfg.Batch, cfg.Delay))
	} else {
		log.Printf("bootstrapping %s over %d vertices...", model, spec.NumVertices)
		var eng *ripple.Engine
		eng, err = ripple.Bootstrap(g, model, features)
		if err != nil {
			return err
		}
		// Serve enables label tracking on the engine itself.
		srv, err = ripple.Serve(eng, ripple.WithAdmission(cfg.Batch, cfg.Delay))
	}
	if err != nil {
		return err
	}
	defer srv.Close()

	api := &api{srv: srv, n: spec.NumVertices, classes: spec.NumClasses, workload: cfg.Workload, dataset: cfg.Dataset, workers: cfg.Workers}
	httpSrv := &http.Server{Addr: cfg.Addr, Handler: api.routes()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("serving %s/%s predictions on %s (epoch 0 published)", cfg.Dataset, cfg.Workload, cfg.Addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-drained // ListenAndServe returns before Shutdown finishes draining
	log.Printf("shut down; final stats: %+v", srv.Stats())
	return nil
}

// api holds the handlers and the static facts handlers may report without
// touching engine-owned state.
type api struct {
	srv      *ripple.Server
	n        int
	classes  int
	workload string
	dataset  string
	workers  int // 0 = single-node engine backend
}

func (a *api) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /label/{v}", a.handleLabel)
	mux.HandleFunc("GET /topk/{v}", a.handleTopK)
	mux.HandleFunc("POST /update", a.handleUpdate)
	mux.HandleFunc("POST /compact", a.handleCompact)
	mux.HandleFunc("GET /healthz", a.handleHealthz)
	mux.HandleFunc("GET /stats", a.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// vertex resolves the {v} path segment against the pinned snapshot, so
// "unknown vertex" is judged by the epoch actually served: anything the
// snapshot cannot answer — out of range, unparseable, or tombstoned by a
// RemoveVertex — is a 404, never a null-field or fabricated 200.
func (a *api) vertex(w http.ResponseWriter, r *http.Request, snap *ripple.Snapshot) (ripple.VertexID, bool) {
	v, err := strconv.Atoi(r.PathValue("v"))
	if err != nil || v < 0 || v >= snap.NumVertices() {
		httpError(w, http.StatusNotFound, "vertex %q out of range [0,%d)", r.PathValue("v"), snap.NumVertices())
		return 0, false
	}
	// In-range vertices only publish -1 when removed (a live row's argmax
	// is always a real class).
	if snap.Label(ripple.VertexID(v)) < 0 {
		httpError(w, http.StatusNotFound, "vertex %d removed", v)
		return 0, false
	}
	return ripple.VertexID(v), true
}

func (a *api) handleLabel(w http.ResponseWriter, r *http.Request) {
	snap := a.srv.Snapshot()
	v, ok := a.vertex(w, r, snap)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"vertex": v,
		"label":  snap.Label(v),
		"epoch":  snap.Epoch(),
	})
}

func (a *api) handleTopK(w http.ResponseWriter, r *http.Request) {
	snap := a.srv.Snapshot()
	v, ok := a.vertex(w, r, snap)
	if !ok {
		return
	}
	k := 3
	if q := r.URL.Query().Get("k"); q != "" {
		parsed, err := strconv.Atoi(q)
		if err != nil || parsed < 1 {
			httpError(w, http.StatusBadRequest, "bad k %q", q)
			return
		}
		k = parsed
	}
	topk := snap.TopK(v, k)
	if topk == nil {
		// In-range vertices always rank with k ≥ 1; keep the array shape
		// even if TopK ever declines, so clients never see JSON null.
		topk = []ripple.Ranked{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"vertex": v,
		"topk":   topk,
		"epoch":  snap.Epoch(),
	})
}

// updateJSON is the wire form of one streaming update.
type updateJSON struct {
	Kind     string    `json:"kind"`
	U        int       `json:"u"`
	V        int       `json:"v"`
	Weight   float32   `json:"weight"`
	Features []float32 `json:"features"`
}

func (a *api) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Updates []updateJSON `json:"updates"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if len(body.Updates) == 0 {
		httpError(w, http.StatusBadRequest, "no updates")
		return
	}
	batch := make([]ripple.Update, 0, len(body.Updates))
	for i, u := range body.Updates {
		upd := ripple.Update{U: ripple.VertexID(u.U), V: ripple.VertexID(u.V), Weight: u.Weight}
		switch u.Kind {
		case "edge-add":
			upd.Kind = ripple.EdgeAdd
			if upd.Weight == 0 {
				upd.Weight = 1
			}
		case "edge-delete":
			upd.Kind = ripple.EdgeDelete
		case "feature-update", "feature":
			upd.Kind = ripple.FeatureUpdate
			upd.Features = ripple.Vector(u.Features)
		default:
			httpError(w, http.StatusBadRequest, "updates[%d]: unknown kind %q", i, u.Kind)
			return
		}
		batch = append(batch, upd)
	}

	if r.URL.Query().Get("sync") != "" {
		res, err := a.srv.Apply(batch)
		if err != nil {
			// Infrastructure failure is an outage (503), not the
			// client's batch being rejected (422).
			if errors.Is(err, ripple.ErrServeBackendFailed) {
				httpError(w, http.StatusServiceUnavailable, "serving backend failed: %v", err)
				return
			}
			httpError(w, http.StatusUnprocessableEntity, "batch rejected: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"applied":     res.Updates,
			"affected":    res.Affected,
			"label_flips": len(res.LabelChanges),
			"latency":     res.Total().String(),
			"epoch":       a.srv.Snapshot().Epoch(),
		})
		return
	}
	for i, u := range batch {
		if err := a.srv.Submit(u); err != nil {
			httpError(w, http.StatusServiceUnavailable, "updates[%d]: %v", i, err)
			return
		}
	}
	st := a.srv.Stats()
	writeJSON(w, http.StatusAccepted, map[string]any{"queued": len(batch), "pending": st.Pending, "epoch": st.Epoch})
}

// handleCompact republishes the current epoch over fresh contiguous
// pages (see Server.Compact) and reports the publisher's copy-on-write
// accounting, including the epoch the accounting was taken at.
func (a *api) handleCompact(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"pages": a.srv.Compact()})
}

func (a *api) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if a.srv.Stats().BackendFailed {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "backend_failed", "epoch": a.srv.Snapshot().Epoch()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "epoch": a.srv.Snapshot().Epoch()})
}

func (a *api) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset":  a.dataset,
		"workload": a.workload,
		"vertices": a.n,
		"classes":  a.classes,
		"workers":  a.workers,
		"serving":  a.srv.Stats(),
	})
}
