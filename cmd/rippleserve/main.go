// Command rippleserve is an HTTP prediction service over the
// snapshot-isolated serving layer: the paper's trigger-based inference
// engine (§2.2) put behind a production-shaped read/write API.
//
// It bootstraps a synthetic dataset (the offline substitute for OGB, see
// DESIGN.md §1), runs the incremental engine behind internal/serve —
// single-node by default, or partitioned across an in-process distributed
// cluster with -workers N (-partitioner picks placement); epochs are then
// published from the leader's delta gather and /stats additionally
// reports comm_bytes/comm_msgs/route_bytes/gather_bytes — and exposes:
//
//	GET  /label/{v}        current predicted class of vertex v
//	GET  /topk/{v}?k=3     v's k best classes with logit scores
//	POST /labels           batched label read: {"ids": [...]} → one epoch's rows
//	                       (Accept: application/octet-stream for binary rows)
//	POST /update[?sync=1]  stream graph updates (JSON; see below)
//	POST /compact          defragment the paged snapshot; page accounting
//	POST /checkpoint       cut a durable checkpoint now (-data-dir mode)
//	GET  /healthz          liveness + current epoch (+ durability state)
//	GET  /stats            serving counters (epochs, batches, flips, pages, ...)
//
// With -replicate-addr the daemon is additionally a replication leader:
// every published epoch is streamed as a delta frame to connected
// followers, and /stats gains the repl_* counters. With -follow
// <leader-replication-addr> the daemon is a read-only follower instead:
// no dataset, model, or engine — it catches up from the leader (or its
// own -data-dir checkpoint + WAL tail) and applies live delta frames
// into its own paged snapshots. Reads serve exactly as on the leader;
// writes (POST /update) answer 421 with a pointer at the leader;
// /healthz reports role, leader epoch, and lag; if the leader dies the
// follower keeps serving its last applied epoch and reconnects forever.
//
// With -data-dir the daemon is durable: admitted batches are written
// ahead to a WAL, checkpoints run every -checkpoint-every batches (and on
// demand, and at graceful shutdown), and a restart pointed at the same
// directory recovers — checkpoint load plus WAL-tail replay — resuming at
// the exact pre-crash epoch with bit-identical predictions. A SIGKILL'd
// daemon loses nothing admitted; a SIGTERM'd one drains in-flight
// requests, flushes the admission queue, and takes a clean final
// checkpoint so the restart replays zero batches.
//
// Reads are lock-free snapshot reads: they never block behind an applying
// batch and always observe a whole published epoch. Writes are coalesced
// by the admission queue (flush on -batch size or -delay age); ?sync=1
// bypasses the queue and returns the applied batch's cost.
//
// Update JSON: {"updates": [
//
//	{"kind": "edge-add", "u": 1, "v": 2, "weight": 1.0},
//	{"kind": "edge-delete", "u": 2, "v": 1},
//	{"kind": "feature-update", "u": 3, "features": [0.1, -0.4, ...]}
//
// ]}
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // profiling handlers for the -pprof-addr side listener
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ripple"
	"ripple/internal/dataset"
)

func main() {
	addr := flag.String("addr", ":8090", "HTTP listen address")
	ds := flag.String("dataset", "arxiv", "dataset shape: arxiv, reddit, products, papers")
	scale := flag.Float64("scale", 0.05, "dataset scale (fraction of published |V|)")
	workload := flag.String("workload", "GS-S", "model workload: GC-S, GS-S, GC-M, GI-S, GC-W")
	layers := flag.Int("layers", 2, "GNN layers")
	hidden := flag.Int("hidden", 64, "hidden width")
	seed := flag.Int64("seed", 42, "generation seed")
	batch := flag.Int("batch", 128, "admission queue flush size")
	delay := flag.Duration("delay", 2*time.Millisecond, "admission queue flush age")
	workers := flag.Int("workers", 0, "distributed mode: partition across this many in-process workers (0 = single-node engine)")
	partitioner := flag.String("partitioner", "multilevel", "distributed mode placement: multilevel, ldg or hash")
	dataDir := flag.String("data-dir", "", "durability: WAL + checkpoints under this directory; recover from it on boot")
	fsync := flag.Bool("fsync", false, "fsync the WAL after every admitted batch (power-loss durability)")
	ckptEvery := flag.Int("checkpoint-every", 256, "automatic checkpoint interval in batches (0 = only /checkpoint and shutdown)")
	fullCkptEvery := flag.Int("full-checkpoint-every", 0, "incremental checkpoints: every nth checkpoint is full, the rest persist only changed rows (0 or 1 = always full)")
	replicateAddr := flag.String("replicate-addr", "", "leader mode: stream published epochs to followers on this address")
	follow := flag.String("follow", "", "follower mode: replicate read-only state from this leader replication address")
	pipelineDepth := flag.Int("pipeline-depth", 0, "admission pipeline depth: in-flight admitted batches before admission blocks (0 = default 8, negative = serial baseline write path)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this side address (off when empty; keep it loopback-only)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	slowBatch := flag.Duration("slow-batch", 0, "log a per-stage timing breakdown for batches slower than this end to end (0 = off)")
	traceRing := flag.Int("trace-ring", 0, "flight recorder depth: recent batch traces kept for /debug/traces (0 = default 1024)")
	flag.Parse()

	logger, err := ripple.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rippleserve:", err)
		os.Exit(2)
	}

	cfg := serveConfig{
		Addr: *addr, Dataset: *ds, Scale: *scale, Workload: *workload,
		Layers: *layers, Hidden: *hidden, Seed: *seed,
		Batch: *batch, Delay: *delay, Workers: *workers, Partitioner: *partitioner,
		DataDir: *dataDir, Fsync: *fsync, CheckpointEvery: *ckptEvery,
		FullCheckpointEvery: *fullCkptEvery,
		ReplicateAddr: *replicateAddr, Follow: *follow,
		PipelineDepth: *pipelineDepth,
		SlowBatch:     *slowBatch, TraceRing: *traceRing,
		Log: logger,
	}
	if *pprofAddr != "" {
		// The profiling listener is a separate server on a separate
		// address: the serving mux never exposes pprof, so an operator
		// cannot accidentally publish heap dumps on the service port.
		go func() {
			logger.Info("pprof listening", "url", fmt.Sprintf("http://%s/debug/pprof/", *pprofAddr))
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}
	if cfg.Follow != "" && cfg.ReplicateAddr != "" {
		fmt.Fprintln(os.Stderr, "rippleserve: -follow and -replicate-addr are mutually exclusive (a follower cannot lead)")
		os.Exit(2)
	}
	runFn := run
	if cfg.Follow != "" {
		runFn = runFollower
	}
	if err := runFn(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "rippleserve:", err)
		os.Exit(1)
	}
}

// serveConfig carries the daemon's flags.
type serveConfig struct {
	Addr        string
	Dataset     string
	Scale       float64
	Workload    string
	Layers      int
	Hidden      int
	Seed        int64
	Batch       int
	Delay       time.Duration
	Workers     int // 0 = single-node engine backend
	Partitioner string

	DataDir             string // "" = not durable
	Fsync               bool
	CheckpointEvery     int
	FullCheckpointEvery int // >1 = delta checkpoints between every nth full
	PipelineDepth       int // 0 = default depth, negative = serial baseline

	ReplicateAddr string // leader mode: replication listener ("" = off)
	Follow        string // follower mode: leader's replication address

	SlowBatch time.Duration // log per-stage breakdowns past this (0 = off)
	TraceRing int           // flight recorder depth (0 = default)
	Log       *slog.Logger
}

func run(cfg serveConfig) error {
	spec, err := dataset.ByName(cfg.Dataset, cfg.Scale)
	if err != nil {
		return err
	}
	spec.Seed = cfg.Seed
	// The listener comes up before the (possibly long) dataset
	// generation, bootstrap or recovery, so health probes see 503
	// "starting" — degraded, not connection-refused — until the first
	// epoch is published.
	api := &api{n: spec.NumVertices, classes: spec.NumClasses, featDim: spec.FeatureDim, workload: cfg.Workload, dataset: cfg.Dataset, workers: cfg.Workers, durable: cfg.DataDir != "", log: cfg.Log}
	httpSrv := &http.Server{Handler: api.routes()}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- httpSrv.Serve(ln) }()
	cfg.Log.Info("listening; 503 starting until bootstrap/recovery completes", "addr", cfg.Addr)
	fail := func(err error) error {
		httpSrv.Close()
		<-serveDone
		return err
	}

	cfg.Log.Info("generating dataset", "dataset", cfg.Dataset, "scale", cfg.Scale, "vertices", spec.NumVertices, "edges", spec.NumEdges())
	g, features, err := dataset.Generate(spec)
	if err != nil {
		return fail(err)
	}
	dims := []int{spec.FeatureDim}
	for i := 1; i < cfg.Layers; i++ {
		dims = append(dims, cfg.Hidden)
	}
	dims = append(dims, spec.NumClasses)
	model, err := ripple.NewModel(cfg.Workload, dims, cfg.Seed)
	if err != nil {
		return fail(err)
	}

	sopts := []ripple.ServeOption{
		ripple.WithAdmission(cfg.Batch, cfg.Delay),
		ripple.WithPipelineDepth(cfg.PipelineDepth),
		ripple.WithLogger(cfg.Log),
		ripple.WithTraceRing(cfg.TraceRing),
		ripple.WithSlowBatch(cfg.SlowBatch),
	}
	if cfg.DataDir != "" {
		// The progress gauge lets /healthz answer "recovering, N batches at
		// R/s" while ripple.Serve is still replaying — the handlers are
		// already listening at that point, holding a nil srv.
		api.progress = &ripple.RecoveryProgress{}
		sopts = append(sopts,
			ripple.WithDataDir(cfg.DataDir),
			ripple.WithFsync(cfg.Fsync),
			ripple.WithCheckpointEvery(cfg.CheckpointEvery),
			ripple.WithFullCheckpointEvery(cfg.FullCheckpointEvery),
			ripple.WithRecoveryProgress(api.progress))
	}
	var srv *ripple.Server
	if cfg.Workers > 0 {
		cfg.Log.Info("bootstrapping distributed", "model", model.String(), "vertices", spec.NumVertices, "workers", cfg.Workers, "partitioner", cfg.Partitioner)
		srv, err = ripple.ServeCluster(g, model, features,
			ripple.DistOptions{Workers: cfg.Workers, Partitioner: cfg.Partitioner}, sopts...)
	} else {
		cfg.Log.Info("bootstrapping", "model", model.String(), "vertices", spec.NumVertices)
		var bopts []ripple.Option
		if cfg.PipelineDepth < 0 {
			// -pipeline-depth < 0 selects the whole serial baseline, not
			// just the serial write path: checkpoints encode with the v1
			// serial codec and the WAL replays without the read-ahead
			// pipeline, so an A/B against the default daemon measures every
			// restart-cost optimisation at once.
			bopts = append(bopts, ripple.WithSerialCheckpoint())
		}
		var eng *ripple.Engine
		eng, err = ripple.Bootstrap(g, model, features, bopts...)
		if err == nil {
			// Serve enables label tracking on the engine itself.
			srv, err = ripple.Serve(eng, sopts...)
		}
	}
	if err != nil {
		return fail(err)
	}
	defer func() {
		// Graceful shutdown: the HTTP server has drained, Close flushes
		// the admission queue and (durable mode) takes the clean final
		// checkpoint, so the next boot replays zero batches.
		srv.Close()
		cfg.Log.Info("shut down", "stats", fmt.Sprintf("%+v", srv.Stats()))
	}()
	if st := srv.Stats(); cfg.DataDir != "" {
		cfg.Log.Info("durable store recovered", "data_dir", cfg.DataDir, "recovered_batches", st.RecoveredBatches, "epoch", st.Epoch, "checkpoint_epoch", st.LastCheckpointEpoch)
	}
	if cfg.ReplicateAddr != "" {
		repl, err := srv.StartReplication(cfg.ReplicateAddr)
		if err != nil {
			return fail(err)
		}
		cfg.Log.Info("replication leader up", "component", "repl", "addr", repl.Addr())
	}
	api.srv.Store(srv)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()

	cfg.Log.Info("serving", "dataset", cfg.Dataset, "workload", cfg.Workload, "addr", cfg.Addr, "epoch", srv.Snapshot().Epoch())
	if err := <-serveDone; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-drained // Serve returns before Shutdown finishes draining
	return nil
}

// runFollower is the -follow mode: no dataset, model, or engine — the
// daemon replicates read-only state from a leader's replication listener
// and serves the same read API off its own paged snapshots. With
// -data-dir it recovers from its local checkpoint + WAL tail first and
// can serve (stale) reads before the leader is even reachable.
func runFollower(cfg serveConfig) error {
	api := &api{leader: cfg.Follow, durable: cfg.DataDir != "", log: cfg.Log}
	httpSrv := &http.Server{Handler: api.routes()}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- httpSrv.Serve(ln) }()
	cfg.Log.Info("listening; 503 starting until the first epoch is caught up", "addr", cfg.Addr, "role", "follower")

	opts := []ripple.FollowOption{ripple.FollowWithLogger(cfg.Log)}
	if cfg.DataDir != "" {
		opts = append(opts,
			ripple.FollowWithDataDir(cfg.DataDir),
			ripple.FollowWithFsync(cfg.Fsync),
			ripple.FollowWithCheckpointEvery(cfg.CheckpointEvery))
	}
	fol, err := ripple.Follow(cfg.Follow, opts...)
	if err != nil {
		httpSrv.Close()
		<-serveDone
		return err
	}
	defer func() {
		// Graceful shutdown: sever the leader stream and (durable mode)
		// cut a final checkpoint so the next boot replays zero frames.
		fol.Close()
		cfg.Log.Info("shut down", "role", "follower", "stats", fmt.Sprintf("%+v", fol.Stats()))
	}()
	if cfg.DataDir != "" {
		cfg.Log.Info("following", "leader", cfg.Follow, "data_dir", cfg.DataDir)
	} else {
		cfg.Log.Info("following", "leader", cfg.Follow)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		// Reads open up at the first servable epoch: recovery's checkpoint
		// if there is one, else the leader's snapshot/catch-up.
		select {
		case <-fol.Ready():
			api.fol.Store(fol)
			st := fol.Stats()
			cfg.Log.Info("follower ready", "epoch", st.Epoch, "leader_epoch", st.LeaderEpoch, "lag_epochs", st.LagEpochs)
		case <-ctx.Done():
		}
	}()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()
	if err := <-serveDone; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-drained
	return nil
}

// api holds the handlers and the static facts handlers may report without
// touching engine-owned state. srv is nil until bootstrap/recovery
// completes — the listener comes up first so health checks see a 503
// "starting" instead of a connection refused while a long recovery runs.
// In follower mode fol (not srv) is set once the first epoch is servable,
// and leader names the replication address writes should go to instead.
type api struct {
	srv      atomic.Pointer[ripple.Server]
	fol      atomic.Pointer[ripple.Follower]
	leader   string // non-empty = follower mode (-follow target)
	n        int
	classes  int
	featDim  int
	workload string
	dataset  string
	workers  int  // 0 = single-node engine backend
	durable  bool // -data-dir set; /checkpoint is live
	log      *slog.Logger
	// progress is the live recovery gauge (durable mode): while srv is
	// still nil because ripple.Serve is replaying, health checks read it to
	// report recovery progress instead of a bare "starting".
	progress *ripple.RecoveryProgress

	// encodeErrs counts response bodies that failed to serialize after the
	// status line was already written — the only place the failure can
	// still be observed. Surfaced as encode_errors in /stats.
	encodeErrs atomic.Int64
}

// server returns the serving layer once it is up, or answers 503 and
// reports false while the daemon is still bootstrapping/recovering. In
// follower mode there is no server: write-shaped endpoints that call this
// answer 421 pointing at the leader instead — the request is valid, this
// replica just cannot be its target.
func (a *api) server(w http.ResponseWriter) (*ripple.Server, bool) {
	if srv := a.srv.Load(); srv != nil {
		return srv, true
	}
	if a.leader != "" {
		a.httpError(w, http.StatusMisdirectedRequest,
			"read-only follower (replicating from %s); send writes to the leader", a.leader)
		return nil, false
	}
	a.writeJSON(w, http.StatusServiceUnavailable, a.startingBody())
	return nil, false
}

// startingBody is the 503 payload served before srv is set. While
// durable recovery is running it upgrades from a bare "starting" to live
// progress — recovered batch count and replay rate — so an operator
// watching a slow boot can tell a long replay from a hung process.
func (a *api) startingBody() map[string]any {
	body := map[string]any{"status": "starting"}
	if a.progress != nil {
		if snap := a.progress.Snapshot(); snap.Active {
			body["status"] = "recovering"
			body["recovered_batches"] = snap.Batches
			body["replay_rate"] = snap.BatchesPerSec
			body["recovery_seconds"] = snap.Seconds
		}
	}
	return body
}

// follower returns the replication follower once its first epoch is
// servable, or answers 503 "starting" and reports false.
func (a *api) follower(w http.ResponseWriter) (*ripple.Follower, bool) {
	if fol := a.fol.Load(); fol != nil {
		return fol, true
	}
	a.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "starting", "role": "follower"})
	return nil, false
}

// snapshot pins the current epoch for a read, whichever role publishes
// it — the server's publisher or the follower's. Reads are identical in
// both roles; only the write path knows the difference.
func (a *api) snapshot(w http.ResponseWriter) (*ripple.Snapshot, bool) {
	if srv := a.srv.Load(); srv != nil {
		return srv.Snapshot(), true
	}
	if fol := a.fol.Load(); fol != nil {
		return fol.Snapshot(), true
	}
	a.writeJSON(w, http.StatusServiceUnavailable, a.startingBody())
	return nil, false
}

func (a *api) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /label/{v}", a.handleLabel)
	mux.HandleFunc("GET /topk/{v}", a.handleTopK)
	mux.HandleFunc("POST /labels", a.handleLabels)
	mux.HandleFunc("POST /update", a.handleUpdate)
	mux.HandleFunc("POST /compact", a.handleCompact)
	mux.HandleFunc("POST /checkpoint", a.handleCheckpoint)
	mux.HandleFunc("GET /healthz", a.handleHealthz)
	mux.HandleFunc("GET /stats", a.handleStats)
	mux.HandleFunc("GET /metrics", a.handleMetrics)
	mux.HandleFunc("GET /debug/traces", a.handleTraces)
	return mux
}

// handleMetrics serves Prometheus text-format metrics for whichever role
// this daemon runs — the server's registry on a leader, the follower's on
// a replica. Registries snapshot live counters per scrape; before the
// role is up there is nothing to scrape, so probes get the same 503
// "starting" body as every other endpoint.
func (a *api) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if srv := a.srv.Load(); srv != nil {
		srv.MetricsRegistry().ServeHTTP(w, r)
		return
	}
	if fol := a.fol.Load(); fol != nil {
		fol.MetricsRegistry().ServeHTTP(w, r)
		return
	}
	a.writeJSON(w, http.StatusServiceUnavailable, a.startingBody())
}

// handleTraces dumps the batch flight recorder: the stage-by-stage
// timelines (admit → wal_append → durable → apply → publish → replicate
// → fanout) of the most recently admitted batches, oldest first.
// ?min=25ms keeps only batches at least that slow end to end. Followers
// do not admit batches; trace the leader instead.
func (a *api) handleTraces(w http.ResponseWriter, r *http.Request) {
	if a.leader != "" {
		a.httpError(w, http.StatusNotFound, "no admission pipeline on a follower; request /debug/traces on the leader")
		return
	}
	srv, ok := a.server(w)
	if !ok {
		return
	}
	var min time.Duration
	if q := r.URL.Query().Get("min"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d < 0 {
			a.httpError(w, http.StatusBadRequest, "bad min %q (want a duration like 25ms)", q)
			return
		}
		min = d
	}
	traces := srv.Traces(min)
	a.writeJSON(w, http.StatusOK, map[string]any{
		"count":  len(traces),
		"ring":   srv.Stats().TracesRecorded,
		"traces": traces,
	})
}

// logger returns the api's structured logger, discarding when none was
// wired (library embedders and tests that construct api directly).
func (a *api) logger() *slog.Logger {
	if a.log != nil {
		return a.log
	}
	return slog.New(slog.DiscardHandler)
}

// writeJSON sends v as the response body. By the time Encode can fail the
// status line is on the wire and nothing can be retracted, so the failure
// is logged and counted (encode_errors in /stats) rather than silently
// dropped: a spike in the counter means clients are seeing truncated
// bodies under a 2xx status.
func (a *api) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		a.encodeErrs.Add(1)
		a.logger().Error("encoding response body failed", "status", status, "err", err)
	}
}

func (a *api) httpError(w http.ResponseWriter, status int, format string, args ...any) {
	a.writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// vertex resolves the {v} path segment against the pinned snapshot, so
// "unknown vertex" is judged by the epoch actually served: anything the
// snapshot cannot answer — out of range, unparseable, or tombstoned by a
// RemoveVertex — is a 404, never a null-field or fabricated 200.
func (a *api) vertex(w http.ResponseWriter, r *http.Request, snap *ripple.Snapshot) (ripple.VertexID, bool) {
	v, err := strconv.Atoi(r.PathValue("v"))
	if err != nil || v < 0 || v >= snap.NumVertices() {
		a.httpError(w, http.StatusNotFound, "vertex %q out of range [0,%d)", r.PathValue("v"), snap.NumVertices())
		return 0, false
	}
	// In-range vertices only publish -1 when removed (a live row's argmax
	// is always a real class).
	if snap.Label(ripple.VertexID(v)) < 0 {
		a.httpError(w, http.StatusNotFound, "vertex %d removed", v)
		return 0, false
	}
	return ripple.VertexID(v), true
}

func (a *api) handleLabel(w http.ResponseWriter, r *http.Request) {
	snap, ok := a.snapshot(w)
	if !ok {
		return
	}
	v, ok := a.vertex(w, r, snap)
	if !ok {
		return
	}
	a.writeJSON(w, http.StatusOK, map[string]any{
		"vertex": v,
		"label":  snap.Label(v),
		"epoch":  snap.Epoch(),
	})
}

// maxTopK bounds the ?k= parameter of /topk. Any real request wants at
// most the class count; a k orders of magnitude beyond any plausible
// class space is a malformed request, not a big one, and is refused
// outright instead of silently clamped.
const maxTopK = 4096

func (a *api) handleTopK(w http.ResponseWriter, r *http.Request) {
	snap, ok := a.snapshot(w)
	if !ok {
		return
	}
	v, ok := a.vertex(w, r, snap)
	if !ok {
		return
	}
	k := 3
	if q := r.URL.Query().Get("k"); q != "" {
		parsed, err := strconv.Atoi(q)
		if err != nil || parsed < 1 {
			a.httpError(w, http.StatusBadRequest, "bad k %q", q)
			return
		}
		if parsed > maxTopK {
			a.httpError(w, http.StatusBadRequest, "k %d exceeds limit %d", parsed, maxTopK)
			return
		}
		k = parsed
	}
	// Reasonable-but-large k degrades gracefully: you get every class.
	if k > snap.NumClasses() {
		k = snap.NumClasses()
	}
	topk := snap.TopK(v, k)
	if topk == nil {
		// In-range vertices always rank with k ≥ 1; keep the array shape
		// even if TopK ever declines, so clients never see JSON null.
		topk = []ripple.Ranked{}
	}
	a.writeJSON(w, http.StatusOK, map[string]any{
		"vertex": v,
		"topk":   topk,
		"epoch":  snap.Epoch(),
	})
}

// maxLabelBatch bounds one POST /labels request; clients with more ids
// split them across requests (epochs may differ between requests — each
// response reports the epoch its rows were read at).
const maxLabelBatch = 65536

// labelsScratch recycles the buffers of POST /labels so the steady-state
// batched read allocates nothing per id: the JSON decoder refills ids in
// place (encoding/json reuses a decoded slice's backing array),
// Snapshot.Labels fills labels in place, and binary responses are
// assembled into buf.
type labelsScratch struct {
	ids    []ripple.VertexID
	labels []int32
	buf    []byte
}

var labelsPool = sync.Pool{New: func() any { return new(labelsScratch) }}

// labelRow is one row of a POST /labels JSON response. Label -1 is the
// per-id analogue of /label's 404 (out of range or removed), folded into
// the row so one bad id cannot fail the batch.
type labelRow struct {
	Vertex ripple.VertexID `json:"vertex"`
	Label  int32           `json:"label"`
}

// handleLabels is the batched read: {"ids": [...]} in, every row read
// from ONE pinned snapshot, so the batch is epoch-consistent in a way a
// loop over GET /label can never be. With "Accept:
// application/octet-stream" the response is binary little-endian — a u64
// epoch followed by one {u32 vertex, i32 label} pair per id, in request
// order — for pollers that would otherwise spend their budget on JSON.
func (a *api) handleLabels(w http.ResponseWriter, r *http.Request) {
	snap, ok := a.snapshot(w)
	if !ok {
		return
	}
	sc := labelsPool.Get().(*labelsScratch)
	defer labelsPool.Put(sc)
	var body struct {
		Ids []ripple.VertexID `json:"ids"`
	}
	body.Ids = sc.ids[:0]
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&body); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			a.httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		a.httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	sc.ids = body.Ids // keep any grown backing array for the pool
	if len(body.Ids) == 0 {
		a.httpError(w, http.StatusBadRequest, "no ids")
		return
	}
	if len(body.Ids) > maxLabelBatch {
		a.httpError(w, http.StatusBadRequest, "%d ids exceeds limit %d", len(body.Ids), maxLabelBatch)
		return
	}
	sc.labels = snap.Labels(body.Ids, sc.labels)

	if strings.Contains(r.Header.Get("Accept"), "application/octet-stream") {
		need := 8 + 8*len(body.Ids)
		if cap(sc.buf) < need {
			sc.buf = make([]byte, need)
		}
		buf := sc.buf[:need]
		binary.LittleEndian.PutUint64(buf, snap.Epoch())
		for i, id := range body.Ids {
			binary.LittleEndian.PutUint32(buf[8+8*i:], uint32(id))
			binary.LittleEndian.PutUint32(buf[12+8*i:], uint32(sc.labels[i]))
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		if _, err := w.Write(buf); err != nil {
			a.encodeErrs.Add(1)
			a.logger().Error("writing binary /labels response failed", "err", err)
		}
		return
	}
	rows := make([]labelRow, len(body.Ids))
	for i, id := range body.Ids {
		rows[i] = labelRow{Vertex: id, Label: sc.labels[i]}
	}
	a.writeJSON(w, http.StatusOK, map[string]any{"rows": rows, "epoch": snap.Epoch()})
}

// updateJSON is the wire form of one streaming update.
type updateJSON struct {
	Kind     string    `json:"kind"`
	U        int       `json:"u"`
	V        int       `json:"v"`
	Weight   float32   `json:"weight"`
	Features []float32 `json:"features"`
}

func (a *api) handleUpdate(w http.ResponseWriter, r *http.Request) {
	srv, ok := a.server(w)
	if !ok {
		return
	}
	var body struct {
		Updates []updateJSON `json:"updates"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&body); err != nil {
		// MaxBytesReader truncation surfaces as a JSON syntax error;
		// unwrap it so an oversized batch reads as "split your batch"
		// (413), not "your JSON is malformed" (400).
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			a.httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes; split the batch", tooBig.Limit)
			return
		}
		a.httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if len(body.Updates) == 0 {
		a.httpError(w, http.StatusBadRequest, "no updates")
		return
	}
	batch := make([]ripple.Update, 0, len(body.Updates))
	for i, u := range body.Updates {
		upd := ripple.Update{U: ripple.VertexID(u.U), V: ripple.VertexID(u.V), Weight: u.Weight}
		switch u.Kind {
		case "edge-add":
			upd.Kind = ripple.EdgeAdd
			if upd.Weight == 0 {
				upd.Weight = 1
			}
		case "edge-delete":
			upd.Kind = ripple.EdgeDelete
		case "feature-update", "feature":
			upd.Kind = ripple.FeatureUpdate
			upd.Features = ripple.Vector(u.Features)
		default:
			a.httpError(w, http.StatusBadRequest, "updates[%d]: unknown kind %q", i, u.Kind)
			return
		}
		batch = append(batch, upd)
	}

	if r.URL.Query().Get("sync") != "" {
		res, err := srv.Apply(batch)
		if err != nil {
			// Infrastructure failure is an outage (503), not the
			// client's batch being rejected (422).
			if errors.Is(err, ripple.ErrServeBackendFailed) {
				a.httpError(w, http.StatusServiceUnavailable, "serving backend failed: %v", err)
				return
			}
			a.httpError(w, http.StatusUnprocessableEntity, "batch rejected: %v", err)
			return
		}
		a.writeJSON(w, http.StatusOK, map[string]any{
			"applied":     res.Updates,
			"affected":    res.Affected,
			"label_flips": len(res.LabelChanges),
			"latency":     res.Total().String(),
			"epoch":       srv.Snapshot().Epoch(),
		})
		return
	}
	// All-or-nothing admission: SubmitAll either queues the whole batch or
	// nothing, so "queued": 0 in the error body is a guarantee, not a
	// guess — a retry cannot double-apply a previously-queued prefix.
	if err := srv.SubmitAll(batch); err != nil {
		a.writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"error": fmt.Sprintf("batch not queued: %v", err), "queued": 0})
		return
	}
	st := srv.Stats()
	a.writeJSON(w, http.StatusAccepted, map[string]any{"queued": len(batch), "pending": st.Pending, "epoch": st.Epoch})
}

// handleCompact republishes the current epoch over fresh contiguous
// pages (see Server.Compact) and reports the publisher's copy-on-write
// accounting, including the epoch the accounting was taken at.
func (a *api) handleCompact(w http.ResponseWriter, r *http.Request) {
	if a.leader != "" {
		// Compaction is page maintenance on this replica's own snapshots,
		// not replicated state: a follower runs it locally.
		fol, ok := a.follower(w)
		if !ok {
			return
		}
		a.writeJSON(w, http.StatusOK, map[string]any{"pages": fol.Compact()})
		return
	}
	srv, ok := a.server(w)
	if !ok {
		return
	}
	a.writeJSON(w, http.StatusOK, map[string]any{"pages": srv.Compact()})
}

// handleCheckpoint cuts a durable checkpoint on demand: the backend's
// state is serialized at the current epoch (the cluster backend runs the
// leader's barrier) and the WAL segments it covers are truncated.
func (a *api) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !a.durable {
		a.httpError(w, http.StatusConflict, "server is not durable; restart with -data-dir")
		return
	}
	if a.leader != "" {
		fol, ok := a.follower(w)
		if !ok {
			return
		}
		st, err := fol.Checkpoint()
		if err != nil {
			a.httpError(w, http.StatusInternalServerError, "checkpoint failed: %v", err)
			return
		}
		a.writeJSON(w, http.StatusOK, map[string]any{"checkpoint": st})
		return
	}
	srv, ok := a.server(w)
	if !ok {
		return
	}
	st, err := srv.Checkpoint()
	if err != nil {
		a.httpError(w, http.StatusInternalServerError, "checkpoint failed: %v", err)
		return
	}
	a.writeJSON(w, http.StatusOK, map[string]any{"checkpoint": st})
}

func (a *api) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if a.leader != "" {
		fol, ok := a.follower(w)
		if !ok {
			return
		}
		st := fol.Stats()
		body := map[string]any{
			"status":       "ok",
			"role":         "follower",
			"epoch":        st.Epoch,
			"leader_epoch": st.LeaderEpoch,
			"lag_epochs":   st.LagEpochs,
			"connected":    st.Connected,
		}
		if a.durable {
			body["recovered_frames"] = st.RecoveredFrames
			body["last_checkpoint_epoch"] = st.LastCheckpointEpoch
		}
		// A dead leader does not make the follower unhealthy: it keeps
		// serving pinned reads at its last applied epoch — 200 with
		// connected=false is the signal, not a 5xx.
		a.writeJSON(w, http.StatusOK, body)
		return
	}
	srv, ok := a.server(w)
	if !ok {
		// 503 "starting": the listener is up but bootstrap/recovery has
		// not finished — degraded, not dead.
		return
	}
	st := srv.Stats()
	body := map[string]any{
		"status": "ok",
		"epoch":  srv.Snapshot().Epoch(),
	}
	if a.durable {
		body["recovered_batches"] = st.RecoveredBatches
		body["last_checkpoint_epoch"] = st.LastCheckpointEpoch
	}
	switch {
	case st.BackendFailed:
		body["status"] = "backend_failed"
		a.writeJSON(w, http.StatusServiceUnavailable, body)
	case st.Recovering:
		// Degraded: the WAL tail is still replaying (reachable when an
		// embedder serves these handlers while serve.Open runs; this
		// daemon reports "starting" for that whole window instead).
		body["status"] = "recovering"
		a.writeJSON(w, http.StatusServiceUnavailable, body)
	default:
		a.writeJSON(w, http.StatusOK, body)
	}
}

func (a *api) handleStats(w http.ResponseWriter, r *http.Request) {
	if a.leader != "" {
		fol, ok := a.follower(w)
		if !ok {
			return
		}
		a.writeJSON(w, http.StatusOK, map[string]any{
			"role":          "follower",
			"leader":        a.leader,
			"encode_errors": a.encodeErrs.Load(),
			"serving":       fol.Stats(),
		})
		return
	}
	srv, ok := a.server(w)
	if !ok {
		return
	}
	body := map[string]any{
		"dataset":       a.dataset,
		"workload":      a.workload,
		"vertices":      a.n,
		"classes":       a.classes,
		"feature_dim":   a.featDim,
		"workers":       a.workers,
		"encode_errors": a.encodeErrs.Load(),
		"serving":       srv.Stats(),
	}
	// The final recovery totals stay readable after boot: the gauge
	// freezes its clock at end(), so this is the whole-recovery replay
	// rate — what a restart drill measures, server-side precise.
	if a.progress != nil {
		if snap := a.progress.Snapshot(); snap.Started {
			body["recovery"] = snap
		}
	}
	a.writeJSON(w, http.StatusOK, body)
}
