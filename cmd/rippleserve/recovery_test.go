package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"syscall"
	"testing"
	"time"

	"ripple"
	"ripple/internal/dataset"
)

// TestMain lets this test binary double as the rippleserve daemon: the
// kill-and-restart test re-execs itself with RIPPLESERVE_CHILD=1 so a
// real process — with real flags, a real HTTP listener and a real data
// dir — can be SIGKILL'd mid-serve and rebooted, exactly what a crashed
// production daemon goes through.
func TestMain(m *testing.M) {
	if os.Getenv("RIPPLESERVE_CHILD") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// freeLoopbackAddr reserves one free loopback port.
func freeLoopbackAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

type daemon struct {
	t    *testing.T
	cmd  *exec.Cmd
	base string
}

func startDaemon(t *testing.T, addr, dataDir string, extra ...string) *daemon {
	t.Helper()
	args := append([]string{
		"-addr", addr,
		"-dataset", "arxiv", "-scale", "0.002", // ~340 vertices: fast to regenerate
		"-workload", "GS-S", "-layers", "2", "-hidden", "16",
		"-batch", "4",
		"-data-dir", dataDir, "-checkpoint-every", "3",
	}, extra...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "RIPPLESERVE_CHILD=1")
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return &daemon{t: t, cmd: cmd, base: "http://" + addr}
}

func (d *daemon) waitHealthy(timeout time.Duration) map[string]any {
	d.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.base + "/healthz")
		if err == nil {
			var body map[string]any
			err := json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if err == nil && resp.StatusCode == http.StatusOK {
				return body
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	d.t.Fatalf("daemon at %s never became healthy", d.base)
	return nil
}

func (d *daemon) getJSON(path string) map[string]any {
	d.t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		d.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		d.t.Fatalf("GET %s: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		d.t.Fatalf("GET %s: status %d: %v", path, resp.StatusCode, body)
	}
	return body
}

// applySync posts one feature update through the synchronous path, so
// every call publishes (and durably logs) exactly one epoch.
func (d *daemon) applySync(v int, seed float64) {
	d.t.Helper()
	features := make([]float64, 128) // arxiv feature width
	for j := range features {
		features[j] = seed + float64(j)/1000
	}
	payload, _ := json.Marshal(map[string]any{
		"updates": []map[string]any{{"kind": "feature-update", "u": v, "features": features}},
	})
	resp, err := http.Post(d.base+"/update?sync=1", "application/json", bytes.NewReader(payload))
	if err != nil {
		d.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		d.t.Fatalf("sync update: status %d", resp.StatusCode)
	}
}

func (d *daemon) servingStats() map[string]any {
	d.t.Helper()
	return d.getJSON("/stats")["serving"].(map[string]any)
}

func (d *daemon) labels(n int) []float64 {
	d.t.Helper()
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		out[v] = d.getJSON(fmt.Sprintf("/label/%d", v))["label"].(float64)
	}
	return out
}

// copyTree mirrors src into dst — the crash image, taken before Close so
// no graceful final checkpoint sneaks in.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		s, d := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			if err := os.MkdirAll(d, 0o755); err != nil {
				t.Fatal(err)
			}
			copyTree(t, s, d)
			continue
		}
		b, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(d, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestHealthzReportsRecoveryProgress pins the operator-facing contract of
// a long replay boot: while ripple.Serve is still replaying the WAL, the
// already-listening /healthz answers 503 "recovering" with a live,
// monotonically nondecreasing recovered_batches count and a replay rate —
// distinguishable both from a bare "starting" and from a hung process —
// and flips to 200 with the full count once recovery lands.
func TestHealthzReportsRecoveryProgress(t *testing.T) {
	spec, err := dataset.ByName("arxiv", 0.002)
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = 7
	g, features, err := dataset.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	model, err := ripple.NewModel("GS-S", []int{spec.FeatureDim, 16, spec.NumClasses}, 7)
	if err != nil {
		t.Fatal(err)
	}
	bootstrap := func() *ripple.Engine {
		eng, err := ripple.Bootstrap(g, model, features)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}

	// Phase 1: build the crash image — a WAL of 60 single-update batches
	// and no checkpoint, copied before Close so recovery must replay all
	// of it.
	const nbatch = 60
	dir := t.TempDir()
	srv, err := ripple.Serve(bootstrap(), ripple.WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	feat := make(ripple.Vector, spec.FeatureDim)
	for i := 0; i < nbatch; i++ {
		for j := range feat {
			feat[j] = float32(i)*0.01 + float32(j)*0.001
		}
		u := ripple.Update{Kind: ripple.FeatureUpdate, U: ripple.VertexID(i % spec.NumVertices), Features: feat}
		if _, err := srv.Apply([]ripple.Update{u}); err != nil {
			t.Fatal(err)
		}
	}
	image := t.TempDir()
	copyTree(t, dir, image)
	srv.Close()

	// Phase 2: the daemon's handler stack, listening before recovery —
	// exactly run()'s boot order. A batch observer throttles the replay so
	// the recovering window is wide enough to poll through.
	api := &api{n: spec.NumVertices, classes: spec.NumClasses, featDim: spec.FeatureDim,
		workload: "GS-S", dataset: "arxiv", durable: true,
		progress: &ripple.RecoveryProgress{}}
	ts := httptest.NewServer(api.routes())
	defer ts.Close()

	recovered := make(chan *ripple.Server, 1)
	recoverErr := make(chan error, 1)
	go func() {
		rsrv, err := ripple.Serve(bootstrap(),
			ripple.WithDataDir(image),
			ripple.WithRecoveryProgress(api.progress),
			ripple.WithBatchObserver(func(ripple.BatchResult, error) { time.Sleep(3 * time.Millisecond) }))
		if err != nil {
			recoverErr <- err
			return
		}
		api.srv.Store(rsrv)
		recovered <- rsrv
	}()

	poll := func() (int, map[string]any) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	var samples []int64
	deadline := time.After(60 * time.Second)
	for {
		select {
		case err := <-recoverErr:
			t.Fatalf("recovery failed: %v", err)
		case rsrv := <-recovered:
			defer rsrv.Close()
			// Recovery done: healthz must be 200 with the whole WAL replayed.
			code, body := poll()
			if code != http.StatusOK || body["status"] != "ok" {
				t.Fatalf("healthz after recovery: %d %v", code, body)
			}
			if got := body["recovered_batches"].(float64); got != nbatch {
				t.Fatalf("recovered_batches after recovery = %v, want %d", got, nbatch)
			}
			// The poll loop must have caught the live window: every sample
			// monotone nondecreasing, and at least two distinct values —
			// progress observed MOVING, not one lucky snapshot.
			if !sort.SliceIsSorted(samples, func(i, j int) bool { return samples[i] < samples[j] }) {
				t.Fatalf("recovered_batches went backwards during replay: %v", samples)
			}
			distinct := map[int64]bool{}
			for _, s := range samples {
				distinct[s] = true
			}
			if len(distinct) < 2 {
				t.Fatalf("saw %d distinct progress values during replay (samples %v); the gauge never moved", len(distinct), samples)
			}
			for _, s := range samples {
				if s < 0 || s > nbatch {
					t.Fatalf("recovered_batches sample %d outside [0,%d]", s, nbatch)
				}
			}
			return
		case <-deadline:
			t.Fatalf("recovery never finished; progress samples: %v", samples)
		default:
		}
		code, body := poll()
		if code == http.StatusServiceUnavailable && body["status"] == "recovering" {
			n := int64(body["recovered_batches"].(float64))
			samples = append(samples, n)
			if _, ok := body["replay_rate"]; !ok {
				t.Fatalf("recovering healthz without replay_rate: %v", body)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestKillRestartRecovery is the production crash drill: boot a real
// rippleserve with -data-dir, admit batches, SIGKILL it (no shutdown
// path runs), boot a fresh process on the same dir, and require the
// recovered daemon to answer with the same epoch and the same labels.
// Then a SIGTERM drill: a graceful shutdown's final checkpoint must make
// the next boot replay zero batches.
func TestKillRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes")
	}
	dir := t.TempDir()
	addr := freeLoopbackAddr(t)
	const probe = 12 // vertices whose labels we pin across the crash

	d1 := startDaemon(t, addr, dir)
	defer d1.cmd.Process.Kill()
	d1.waitHealthy(90 * time.Second)
	// 7 synchronous single-update batches → epochs 1..7. Automatic
	// checkpoints are background work since the admission pipeline, so
	// the second one cuts at epoch 6 or 7 depending on scheduling; wait
	// for it, then ensure at least one epoch lives only in the WAL tail.
	for i := 0; i < 7; i++ {
		d1.applySync(i, float64(i)*0.1-0.3)
	}
	st := d1.servingStats()
	if got := st["epoch"].(float64); got != 7 {
		t.Fatalf("pre-crash epoch %v, want 7", got)
	}
	ckptDeadline := time.Now().Add(30 * time.Second)
	for st["last_checkpoint_epoch"].(float64) < 6 {
		if time.Now().After(ckptDeadline) {
			t.Fatalf("second automatic checkpoint never landed: %v", st)
		}
		time.Sleep(10 * time.Millisecond)
		st = d1.servingStats()
	}
	wantCkpt := st["last_checkpoint_epoch"].(float64)
	wantEpoch := st["epoch"].(float64)
	for wantEpoch <= wantCkpt {
		d1.applySync(int(wantEpoch)%probe, wantEpoch*0.05)
		wantEpoch++
	}
	wantReplay := wantEpoch - wantCkpt
	wantLabels := d1.labels(probe)

	// Crash: SIGKILL, no drain, no final checkpoint.
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d1.cmd.Wait()

	d2 := startDaemon(t, addr, dir)
	defer d2.cmd.Process.Kill()
	health := d2.waitHealthy(90 * time.Second)
	if health["recovered_batches"].(float64) != wantReplay {
		t.Fatalf("healthz after crash: %v, want %v recovered batches", health, wantReplay)
	}
	st = d2.servingStats()
	if st["epoch"].(float64) != wantEpoch {
		t.Fatalf("recovered epoch %v, want %v", st["epoch"], wantEpoch)
	}
	if st["last_checkpoint_epoch"].(float64) != wantCkpt || st["recovered_batches"].(float64) != wantReplay {
		t.Fatalf("recovery stats %v, want checkpoint %v + %v replayed", st, wantCkpt, wantReplay)
	}
	if got := d2.labels(probe); fmt.Sprint(got) != fmt.Sprint(wantLabels) {
		t.Fatalf("labels after crash recovery: %v, want %v", got, wantLabels)
	}

	// Graceful drill: SIGTERM drains and checkpoints; the next boot must
	// replay nothing and still serve the same state.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d2.cmd.Wait(); err != nil {
		t.Fatalf("graceful shutdown exited with %v", err)
	}

	d3 := startDaemon(t, addr, dir)
	defer func() {
		d3.cmd.Process.Signal(syscall.SIGTERM)
		d3.cmd.Wait()
	}()
	d3.waitHealthy(90 * time.Second)
	st = d3.servingStats()
	if st["recovered_batches"].(float64) != 0 || st["epoch"].(float64) != wantEpoch {
		t.Fatalf("post-graceful boot stats %v, want zero replay at epoch %v", st, wantEpoch)
	}
	if got := d3.labels(probe); fmt.Sprint(got) != fmt.Sprint(wantLabels) {
		t.Fatalf("labels after graceful restart: %v, want %v", got, wantLabels)
	}
}
