// Command rippled runs one rank of a real multi-process Ripple cluster
// over TCP — the deployment mode corresponding to the paper's MPI cluster.
// Every process deterministically regenerates the same synthetic dataset,
// model and partition from the shared flags (a real deployment would load
// pre-partitioned state from storage), then either serves a partition
// (worker) or streams the update workload (leader).
//
// Example 3-worker run on one machine (4 terminals):
//
//	rippled -role worker -rank 0 -addrs :7701,:7702,:7703,:7700
//	rippled -role worker -rank 1 -addrs :7701,:7702,:7703,:7700
//	rippled -role worker -rank 2 -addrs :7701,:7702,:7703,:7700
//	rippled -role leader           -addrs :7701,:7702,:7703,:7700
//
// The address list has one entry per worker rank plus the leader's address
// last. All ranks must use identical -dataset/-scale/-workload/… flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ripple/internal/cluster"
	"ripple/internal/dataset"
	"ripple/internal/gnn"
	"ripple/internal/partition"
	"ripple/internal/transport"
)

func main() {
	role := flag.String("role", "", "worker or leader")
	rank := flag.Int("rank", 0, "worker rank in [0, #workers)")
	addrsFlag := flag.String("addrs", "", "comma-separated listen addresses: one per worker, leader last")
	ds := flag.String("dataset", "arxiv", "dataset shape: arxiv, reddit, products, papers")
	scale := flag.Float64("scale", 0.05, "dataset scale (fraction of published |V|)")
	workload := flag.String("workload", "GC-S", "model workload: GC-S, GS-S, GC-M, GI-S, GC-W")
	layers := flag.Int("layers", 2, "GNN layers")
	hidden := flag.Int("hidden", 64, "hidden width")
	strategy := flag.String("strategy", "ripple", "maintenance strategy: ripple or rc")
	bs := flag.Int("bs", 100, "update batch size (leader)")
	batches := flag.Int("batches", 10, "number of batches to stream (leader)")
	stream := flag.Int("stream", 3000, "update stream length")
	seed := flag.Int64("seed", 42, "shared seed")
	timeout := flag.Duration("timeout", 60*time.Second, "mesh connect timeout")
	flag.Parse()

	if err := run(*role, *rank, *addrsFlag, *ds, *scale, *workload, *layers, *hidden, *strategy, *bs, *batches, *stream, *seed, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "rippled:", err)
		os.Exit(1)
	}
}

func run(role string, rank int, addrsFlag, ds string, scale float64, workload string, layers, hidden int, strategy string, bs, batches, stream int, seed int64, timeout time.Duration) error {
	addrs := strings.Split(addrsFlag, ",")
	if len(addrs) < 2 {
		return fmt.Errorf("-addrs needs at least one worker plus the leader, got %q", addrsFlag)
	}
	k := len(addrs) - 1 // last address is the leader

	strat := cluster.StratRipple
	switch strategy {
	case "ripple":
	case "rc":
		strat = cluster.StratRC
	default:
		return fmt.Errorf("unknown -strategy %q (want ripple or rc)", strategy)
	}

	// Deterministic shared state: every rank derives the identical world.
	spec, err := dataset.ByName(ds, scale)
	if err != nil {
		return err
	}
	fmt.Printf("[%s] generating %s at scale %v (n=%d)...\n", role, ds, scale, spec.NumVertices)
	wl, err := dataset.Build(spec, dataset.StreamConfig{Total: stream, HoldoutFrac: 0.10, Seed: seed})
	if err != nil {
		return err
	}
	dims := []int{spec.FeatureDim}
	for i := 1; i < layers; i++ {
		dims = append(dims, hidden)
	}
	dims = append(dims, spec.NumClasses)
	model, err := gnn.NewWorkload(workload, dims, seed)
	if err != nil {
		return err
	}
	assign, err := partition.Multilevel(wl.Snapshot, k, partition.DefaultMultilevelOptions)
	if err != nil {
		return err
	}
	own := cluster.BuildOwnership(assign)

	switch role {
	case "worker":
		if rank < 0 || rank >= k {
			return fmt.Errorf("-rank %d out of [0,%d)", rank, k)
		}
		emb, err := gnn.Forward(wl.Snapshot, model, wl.Features)
		if err != nil {
			return err
		}
		conn, err := transport.DialTCP(rank, addrs, timeout)
		if err != nil {
			return err
		}
		defer conn.Close()
		w, err := cluster.NewWorker(rank, conn, k, model, own, strat, wl.Snapshot, emb)
		if err != nil {
			return err
		}
		fmt.Printf("[worker %d] serving %d local vertices\n", rank, own.NumLocal(rank))
		return w.Run()

	case "leader":
		// The leader also needs the bootstrap only to keep flag parity; it
		// holds no embedding state.
		conn, err := transport.DialTCP(k, addrs, timeout)
		if err != nil {
			return err
		}
		defer conn.Close()
		leader := cluster.NewLeader(conn, own, transport.TenGigE)
		defer leader.Shutdown()

		all := wl.Batches(bs)
		if batches > 0 && len(all) > batches {
			all = all[:batches]
		}
		fmt.Printf("[leader] streaming %d batches of %d updates to %d workers (%s, %s %dL)\n",
			len(all), bs, k, strategy, workload, layers)
		var updates int
		var total time.Duration
		for i, b := range all {
			res, err := leader.ApplyBatch(b)
			if err != nil {
				return err
			}
			updates += res.Updates
			total += res.WallTime
			fmt.Printf("  batch %2d: wall=%-12v affected=%-8d commBytes=%-10d simLat=%v\n",
				i, res.WallTime.Round(time.Microsecond), res.Affected, res.CommBytes, res.SimLatency().Round(time.Microsecond))
		}
		if total > 0 {
			fmt.Printf("[leader] throughput %.1f up/s over TCP (wall time)\n", float64(updates)/total.Seconds())
		}
		return nil

	default:
		return fmt.Errorf("unknown -role %q (want worker or leader)", role)
	}
}
