// Command rippled runs one rank of a real multi-process Ripple cluster
// over TCP — the deployment mode corresponding to the paper's MPI cluster.
// Every process deterministically regenerates the same synthetic dataset,
// model and partition from the shared flags (a real deployment would load
// pre-partitioned state from storage), then either serves a partition
// (worker) or streams the update workload (leader).
//
// Example 3-worker run on one machine (4 terminals):
//
//	rippled -role worker -rank 0 -addrs :7701,:7702,:7703,:7700
//	rippled -role worker -rank 1 -addrs :7701,:7702,:7703,:7700
//	rippled -role worker -rank 2 -addrs :7701,:7702,:7703,:7700
//	rippled -role leader           -addrs :7701,:7702,:7703,:7700
//
// The address list has one entry per worker rank plus the leader's address
// last. All ranks must use identical -dataset/-scale/-workload/… flags.
//
// With -data-dir (a directory all ranks can read — same machine or shared
// storage) the deployment is durable: the leader write-ahead-logs every
// streamed batch and cuts a barrier-checkpoint manifest every
// -checkpoint-every batches (each worker serializes its partition, the
// leader writes one manifest) plus once when the stream completes. On
// reboot, workers rebuild their partitions straight from the manifest (no
// bootstrap forward pass), the leader replays the WAL tail through the
// normal batch path, and the stream resumes at the first unapplied batch.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"ripple/internal/cluster"
	"ripple/internal/dataset"
	"ripple/internal/engine"
	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/obs"
	"ripple/internal/partition"
	"ripple/internal/transport"
	"ripple/internal/wal"
)

func main() {
	role := flag.String("role", "", "worker or leader")
	rank := flag.Int("rank", 0, "worker rank in [0, #workers)")
	addrsFlag := flag.String("addrs", "", "comma-separated listen addresses: one per worker, leader last")
	ds := flag.String("dataset", "arxiv", "dataset shape: arxiv, reddit, products, papers")
	scale := flag.Float64("scale", 0.05, "dataset scale (fraction of published |V|)")
	workload := flag.String("workload", "GC-S", "model workload: GC-S, GS-S, GC-M, GI-S, GC-W")
	layers := flag.Int("layers", 2, "GNN layers")
	hidden := flag.Int("hidden", 64, "hidden width")
	strategy := flag.String("strategy", "ripple", "maintenance strategy: ripple or rc")
	bs := flag.Int("bs", 100, "update batch size (leader)")
	batches := flag.Int("batches", 10, "number of batches to stream (leader)")
	stream := flag.Int("stream", 3000, "update stream length")
	seed := flag.Int64("seed", 42, "shared seed")
	timeout := flag.Duration("timeout", 60*time.Second, "mesh connect timeout")
	dataDir := flag.String("data-dir", "", "durability: leader WAL + barrier-checkpoint manifests under this (rank-shared) directory; recover/resume from it on boot")
	ckptEvery := flag.Int("checkpoint-every", 5, "leader: barrier checkpoint interval in batches (0 = never, recovery replays the whole WAL)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics for this rank on this address (off when empty)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rippled:", err)
		os.Exit(2)
	}
	cfg := rankConfig{
		Role: *role, Rank: *rank, Addrs: strings.Split(*addrsFlag, ","),
		Dataset: *ds, Scale: *scale, Workload: *workload, Layers: *layers, Hidden: *hidden,
		Strategy: *strategy, BatchSize: *bs, Batches: *batches, Stream: *stream,
		Seed: *seed, Timeout: *timeout, DataDir: *dataDir, CkptEvery: *ckptEvery,
		MetricsAddr: *metricsAddr, Log: logger,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "rippled:", err)
		os.Exit(1)
	}
}

// rankConfig carries one rank's flags. Every rank of a deployment must
// share the world-defining fields (Dataset..Seed) verbatim.
type rankConfig struct {
	Role  string
	Rank  int
	Addrs []string // one per worker, leader last

	Dataset  string
	Scale    float64
	Workload string
	Layers   int
	Hidden   int

	Strategy  string
	BatchSize int
	Batches   int
	Stream    int
	Seed      int64
	Timeout   time.Duration

	DataDir   string // "" = not durable
	CkptEvery int

	MetricsAddr string // "" = no /metrics listener
	Log         *slog.Logger
}

// rankMetrics is one rank's /metrics surface: live counters bumped on the
// hot path plus per-scrape snapshots of WAL and transport traffic. Both
// roles register the full series set (a worker's leader-only counters
// just stay zero), so dashboards see a stable schema across ranks.
type rankMetrics struct {
	reg *obs.Registry

	batches    *obs.Counter
	updates    *obs.Counter
	affected   *obs.Counter
	commBytes  *obs.Counter
	ckpts      *obs.Counter
	recovered  *obs.Counter
	streamPos  *obs.Gauge
	streamLen  *obs.Gauge
	workers    *obs.Gauge
	localVerts *obs.Gauge
	wallH      *obs.LatencyHist
	simH       *obs.LatencyHist

	mu   sync.Mutex
	conn *transport.TCPConn // set once the mesh is up
	wlog *wal.Log           // set once the leader's WAL is open
}

// newRankMetrics builds the registry with role/rank constant labels and
// starts the /metrics listener when addr is non-empty.
func newRankMetrics(cfg rankConfig) *rankMetrics {
	if cfg.Log == nil {
		cfg.Log = obs.NopLogger()
	}
	r := obs.NewRegistry()
	r.SetConstLabels(obs.L("role", cfg.Role), obs.L("rank", strconv.Itoa(cfg.Rank)))
	r.CollectGoRuntime()
	m := &rankMetrics{
		reg:        r,
		batches:    r.NewCounter("rippled_batches_total", "Update batches applied by this rank's cluster."),
		updates:    r.NewCounter("rippled_updates_total", "Graph updates in applied batches."),
		affected:   r.NewCounter("rippled_affected_vertices_total", "Vertices whose embeddings changed across batches."),
		commBytes:  r.NewCounter("rippled_comm_bytes_total", "Inter-worker propagation bytes reported per batch."),
		ckpts:      r.NewCounter("rippled_checkpoints_total", "Barrier-checkpoint manifests written."),
		recovered:  r.NewCounter("rippled_recovered_batches", "Batches replayed from the WAL at boot."),
		streamPos:  r.NewGauge("rippled_stream_position", "Batches of the workload stream applied so far."),
		streamLen:  r.NewGauge("rippled_stream_batches", "Total batches in the configured workload stream."),
		workers:    r.NewGauge("rippled_workers", "Worker ranks in the mesh."),
		localVerts: r.NewGauge("rippled_local_vertices", "Vertices owned by this rank (workers only)."),
		wallH:      r.NewHistogram("rippled_batch_wall_seconds", "Leader-observed wall time per applied batch."),
		simH:       r.NewHistogram("rippled_batch_sim_latency_seconds", "Modeled network latency per applied batch."),
	}
	r.NewGauge("rippled_up", "Always 1 while this rank is alive.").Set(1)
	r.Collect(func(e *obs.Emitter) {
		m.mu.Lock()
		conn, wlog := m.conn, m.wlog
		m.mu.Unlock()
		var tc transport.Counters
		if conn != nil {
			tc = conn.Counters()
		}
		e.Counter("rippled_transport_bytes_total", "Mesh transport bytes by direction.", float64(tc.BytesSent), obs.L("dir", "sent"))
		e.Counter("rippled_transport_bytes_total", "Mesh transport bytes by direction.", float64(tc.BytesRecv), obs.L("dir", "recv"))
		e.Counter("rippled_transport_msgs_total", "Mesh transport messages by direction.", float64(tc.MsgsSent), obs.L("dir", "sent"))
		e.Counter("rippled_transport_msgs_total", "Mesh transport messages by direction.", float64(tc.MsgsRecv), obs.L("dir", "recv"))
		var ws wal.Stats
		if wlog != nil {
			ws = wlog.Stats()
		}
		e.Gauge("rippled_wal_bytes", "Live WAL bytes on disk (leader).", float64(ws.Bytes))
		e.Gauge("rippled_wal_segments", "Live WAL segment files (leader).", float64(ws.Segments))
		e.Gauge("rippled_wal_last_epoch", "Epoch of the newest WAL record (leader).", float64(ws.LastEpoch))
		e.Counter("rippled_wal_appends_total", "WAL records appended (leader).", float64(ws.Appends))
		e.Counter("rippled_wal_fsyncs_total", "WAL fsyncs issued (leader).", float64(ws.Fsyncs))
	})
	if cfg.MetricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", r)
		go func() {
			cfg.Log.Info("metrics listening", "addr", cfg.MetricsAddr)
			if err := http.ListenAndServe(cfg.MetricsAddr, mux); err != nil {
				cfg.Log.Error("metrics listener failed", "err", err)
			}
		}()
	}
	return m
}

func (m *rankMetrics) setConn(c *transport.TCPConn) {
	m.mu.Lock()
	m.conn = c
	m.mu.Unlock()
}

func (m *rankMetrics) setWAL(w *wal.Log) {
	m.mu.Lock()
	m.wlog = w
	m.mu.Unlock()
}

// sharedWorld is the deterministic state every rank derives identically
// from the shared flags: the bootstrap snapshot, the update stream, the
// model, and the partition placement. With -data-dir and an existing
// barrier-checkpoint manifest, the placement (and each rank's restart
// state) comes from the manifest instead — every rank reads the same
// shared directory, so the multi-process determinism contract holds.
type sharedWorld struct {
	k     int
	wl    *dataset.Workload
	model *gnn.Model
	own   *cluster.Ownership
	strat cluster.Strategy

	// Manifest recovery state (nil/zero without -data-dir or before the
	// first checkpoint): the checkpointed topology, embeddings, and the
	// number of batches the manifest covers.
	ckptGraph *graph.Graph
	ckptEmb   *gnn.Embeddings
	ckptEpoch uint64
}

// buildShared regenerates the shared world from the config.
func buildShared(cfg rankConfig) (*sharedWorld, error) {
	if cfg.Log == nil { // tests and embedders construct rankConfig directly
		cfg.Log = obs.NopLogger()
	}
	if len(cfg.Addrs) < 2 {
		return nil, fmt.Errorf("-addrs needs at least one worker plus the leader, got %q", strings.Join(cfg.Addrs, ","))
	}
	strat := cluster.StratRipple
	switch cfg.Strategy {
	case "ripple":
	case "rc":
		strat = cluster.StratRC
	default:
		return nil, fmt.Errorf("unknown -strategy %q (want ripple or rc)", cfg.Strategy)
	}
	spec, err := dataset.ByName(cfg.Dataset, cfg.Scale)
	if err != nil {
		return nil, err
	}
	cfg.Log.Info("generating dataset", "dataset", cfg.Dataset, "scale", cfg.Scale, "vertices", spec.NumVertices)
	wl, err := dataset.Build(spec, dataset.StreamConfig{Total: cfg.Stream, HoldoutFrac: 0.10, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	dims := []int{spec.FeatureDim}
	for i := 1; i < cfg.Layers; i++ {
		dims = append(dims, cfg.Hidden)
	}
	dims = append(dims, spec.NumClasses)
	model, err := gnn.NewWorkload(cfg.Workload, dims, cfg.Seed)
	if err != nil {
		return nil, err
	}
	k := len(cfg.Addrs) - 1 // last address is the leader
	sh := &sharedWorld{k: k, wl: wl, model: model, strat: strat}
	if cfg.DataDir != "" {
		if err := loadNewestManifest(cfg.DataDir, sh, cfg.Log); err != nil {
			return nil, err
		}
	}
	if sh.ckptGraph != nil {
		cfg.Log.Info("resuming from checkpoint manifest", "batch", sh.ckptEpoch)
	} else {
		assign, err := partition.Multilevel(wl.Snapshot, k, partition.DefaultMultilevelOptions)
		if err != nil {
			return nil, err
		}
		sh.own = cluster.BuildOwnership(assign)
	}
	return sh, nil
}

// manifestEpochs lists the batch counts of the checkpoint manifests in
// dir, newest first.
func manifestEpochs(dir string) []uint64 {
	return wal.ListEpochFiles(dir, "ckpt-", ".manifest")
}

func manifestPath(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%016x.manifest", epoch))
}

// loadNewestManifest fills sh's recovery state from the newest loadable
// manifest in dir (skipping unreadable ones); no manifest leaves sh on
// the bootstrap path.
func loadNewestManifest(dir string, sh *sharedWorld, log *slog.Logger) error {
	for _, epoch := range manifestEpochs(dir) {
		f, err := os.Open(manifestPath(dir, epoch))
		if err != nil {
			continue
		}
		g, assign, emb, err := cluster.LoadManifest(f)
		f.Close()
		if err != nil {
			log.Warn("skipping unreadable manifest", "batch", epoch, "err", err)
			continue
		}
		if assign.K != sh.k {
			return fmt.Errorf("manifest at batch %d partitions %d workers, -addrs implies %d", epoch, assign.K, sh.k)
		}
		sh.ckptGraph, sh.ckptEmb, sh.ckptEpoch = g, emb, epoch
		sh.own = cluster.BuildOwnership(assign)
		return nil
	}
	return nil
}

// startWorker dials the mesh and builds one worker rank over the shared
// world — from the checkpoint manifest when one exists (no forward pass),
// from the deterministic bootstrap otherwise. The caller runs (and is
// unblocked by the leader's shutdown of) worker.Run, then owns closing
// the returned conn.
func startWorker(sh *sharedWorld, cfg rankConfig) (*cluster.Worker, *transport.TCPConn, error) {
	if cfg.Rank < 0 || cfg.Rank >= sh.k {
		return nil, nil, fmt.Errorf("-rank %d out of [0,%d)", cfg.Rank, sh.k)
	}
	g, emb := sh.ckptGraph, sh.ckptEmb
	if emb == nil {
		g = sh.wl.Snapshot
		var err error
		emb, err = gnn.Forward(g, sh.model, sh.wl.Features)
		if err != nil {
			return nil, nil, err
		}
	}
	conn, err := transport.DialTCP(cfg.Rank, cfg.Addrs, cfg.Timeout)
	if err != nil {
		return nil, nil, err
	}
	w, err := cluster.NewWorker(cfg.Rank, conn, sh.k, sh.model, sh.own, sh.strat, g, emb)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	return w, conn, nil
}

// runLeader dials the mesh as the leader, streams the workload's batches,
// and shuts the workers down. With -data-dir the leader is durable: it
// replays the WAL tail left by a previous run (the workers, booted from
// the same manifest, catch up through the normal batch path), resumes the
// stream at the first unapplied batch, writes every new batch ahead to
// the WAL, and cuts barrier-checkpoint manifests every -checkpoint-every
// batches plus once at the end of the stream.
func runLeader(sh *sharedWorld, cfg rankConfig, met *rankMetrics) error {
	conn, err := transport.DialTCP(sh.k, cfg.Addrs, cfg.Timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	met.setConn(conn)
	met.workers.Set(int64(sh.k))
	leader := cluster.NewLeader(conn, sh.own, transport.TenGigE)
	defer leader.Shutdown()

	all := sh.wl.Batches(cfg.BatchSize)
	if cfg.Batches > 0 && len(all) > cfg.Batches {
		all = all[:cfg.Batches]
	}
	met.streamLen.Set(int64(len(all)))

	var wlog *wal.Log
	var shadow *graph.Graph
	applied := uint64(0)
	if cfg.DataDir != "" {
		// The leader's topology shadow: the checkpointed topology or the
		// bootstrap snapshot, mirroring every applied batch so the next
		// manifest records the current graph.
		shadow = sh.ckptGraph
		if shadow == nil {
			shadow = sh.wl.CloneSnapshot()
		}
		wlog, err = wal.Open(filepath.Join(cfg.DataDir, "wal"), wal.Config{})
		if err != nil {
			return err
		}
		defer wlog.Close()
		met.setWAL(wlog)
		applied = sh.ckptEpoch
		err = wlog.Replay(sh.ckptEpoch, func(epoch uint64, payload []byte) error {
			batch, err := cluster.DecodeUpdates(payload)
			if err != nil {
				return err
			}
			if epoch != applied+1 {
				return fmt.Errorf("wal gap: record for batch %d after %d", epoch, applied)
			}
			if _, err := leader.ApplyBatch(batch); err != nil {
				return err
			}
			mirrorTopology(shadow, batch)
			applied++
			return nil
		})
		if err != nil {
			return fmt.Errorf("replaying wal: %w", err)
		}
		if recovered := applied - sh.ckptEpoch; recovered > 0 {
			met.recovered.Add(recovered)
			cfg.Log.Info("recovered from WAL", "batches", recovered, "resume_at", applied)
		}
	}
	checkpoint := func() error {
		emb, err := leader.GatherState()
		if err != nil {
			return err
		}
		err = wal.WriteFileAtomic(manifestPath(cfg.DataDir, applied), func(w io.Writer) error {
			return cluster.WriteManifest(w, shadow, sh.own, emb)
		})
		if err != nil {
			return fmt.Errorf("writing manifest: %w", err)
		}
		for _, old := range manifestEpochs(cfg.DataDir) {
			if old != applied {
				os.Remove(manifestPath(cfg.DataDir, old))
			}
		}
		met.ckpts.Inc()
		cfg.Log.Info("barrier checkpoint", "batch", applied)
		return wlog.MarkCheckpoint(applied)
	}

	met.streamPos.Set(int64(applied))
	if int(applied) >= len(all) {
		cfg.Log.Info("stream already complete; nothing to do", "batch", applied)
		return nil
	}
	cfg.Log.Info("streaming", "from_batch", applied, "to_batch", len(all)-1, "batch_size", cfg.BatchSize,
		"workers", sh.k, "strategy", cfg.Strategy, "workload", cfg.Workload, "layers", cfg.Layers)
	var updates, sinceCkpt int
	var total time.Duration
	for i := int(applied); i < len(all); i++ {
		b := all[i]
		if wlog != nil {
			if err := wlog.Append(uint64(i+1), cluster.EncodeUpdates(b)); err != nil {
				return err
			}
		}
		res, err := leader.ApplyBatch(b)
		if err != nil {
			return err
		}
		if shadow != nil {
			mirrorTopology(shadow, b)
		}
		applied++
		updates += res.Updates
		total += res.WallTime
		met.batches.Inc()
		met.updates.Add(uint64(res.Updates))
		met.affected.Add(uint64(res.Affected))
		met.commBytes.Add(uint64(res.CommBytes))
		met.wallH.Observe(res.WallTime)
		met.simH.Observe(res.SimLatency())
		met.streamPos.Set(int64(applied))
		cfg.Log.Info("batch applied", "batch", i, "wall", res.WallTime.Round(time.Microsecond),
			"affected", res.Affected, "comm_bytes", res.CommBytes, "sim_latency", res.SimLatency().Round(time.Microsecond))
		if wlog != nil && cfg.CkptEvery > 0 {
			if sinceCkpt++; sinceCkpt >= cfg.CkptEvery {
				if err := checkpoint(); err != nil {
					return err
				}
				sinceCkpt = 0
			}
		}
	}
	if wlog != nil && cfg.CkptEvery > 0 && sinceCkpt > 0 {
		if err := checkpoint(); err != nil {
			return err
		}
	}
	if total > 0 {
		cfg.Log.Info("stream complete", "throughput_ups", float64(updates)/total.Seconds())
	}
	return nil
}

// mirrorTopology applies a batch's structural changes to the leader's
// shadow graph (features live on the workers; the manifest only needs
// topology).
func mirrorTopology(g *graph.Graph, batch []engine.Update) {
	for _, u := range batch {
		switch u.Kind {
		case engine.EdgeAdd:
			_ = g.AddEdge(u.U, u.V, u.Weight)
		case engine.EdgeDelete:
			_, _ = g.RemoveEdge(u.U, u.V)
		}
	}
}

func run(cfg rankConfig) error {
	if cfg.Log == nil {
		cfg.Log = obs.NopLogger()
	}
	cfg.Log = cfg.Log.With("role", cfg.Role, "rank", cfg.Rank)
	sh, err := buildShared(cfg)
	if err != nil {
		return err
	}
	met := newRankMetrics(cfg)
	switch cfg.Role {
	case "worker":
		w, conn, err := startWorker(sh, cfg)
		if err != nil {
			return err
		}
		defer conn.Close()
		met.setConn(conn)
		met.workers.Set(int64(sh.k))
		met.localVerts.Set(int64(sh.own.NumLocal(cfg.Rank)))
		cfg.Log.Info("worker serving", "local_vertices", sh.own.NumLocal(cfg.Rank))
		return w.Run()
	case "leader":
		return runLeader(sh, cfg, met)
	default:
		return fmt.Errorf("unknown -role %q (want worker or leader)", cfg.Role)
	}
}
