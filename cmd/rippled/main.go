// Command rippled runs one rank of a real multi-process Ripple cluster
// over TCP — the deployment mode corresponding to the paper's MPI cluster.
// Every process deterministically regenerates the same synthetic dataset,
// model and partition from the shared flags (a real deployment would load
// pre-partitioned state from storage), then either serves a partition
// (worker) or streams the update workload (leader).
//
// Example 3-worker run on one machine (4 terminals):
//
//	rippled -role worker -rank 0 -addrs :7701,:7702,:7703,:7700
//	rippled -role worker -rank 1 -addrs :7701,:7702,:7703,:7700
//	rippled -role worker -rank 2 -addrs :7701,:7702,:7703,:7700
//	rippled -role leader           -addrs :7701,:7702,:7703,:7700
//
// The address list has one entry per worker rank plus the leader's address
// last. All ranks must use identical -dataset/-scale/-workload/… flags.
//
// With -data-dir (a directory all ranks can read — same machine or shared
// storage) the deployment is durable: the leader write-ahead-logs every
// streamed batch and cuts a barrier-checkpoint manifest every
// -checkpoint-every batches (each worker serializes its partition, the
// leader writes one manifest) plus once when the stream completes. On
// reboot, workers rebuild their partitions straight from the manifest (no
// bootstrap forward pass), the leader replays the WAL tail through the
// normal batch path, and the stream resumes at the first unapplied batch.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ripple/internal/cluster"
	"ripple/internal/dataset"
	"ripple/internal/engine"
	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/partition"
	"ripple/internal/transport"
	"ripple/internal/wal"
)

func main() {
	role := flag.String("role", "", "worker or leader")
	rank := flag.Int("rank", 0, "worker rank in [0, #workers)")
	addrsFlag := flag.String("addrs", "", "comma-separated listen addresses: one per worker, leader last")
	ds := flag.String("dataset", "arxiv", "dataset shape: arxiv, reddit, products, papers")
	scale := flag.Float64("scale", 0.05, "dataset scale (fraction of published |V|)")
	workload := flag.String("workload", "GC-S", "model workload: GC-S, GS-S, GC-M, GI-S, GC-W")
	layers := flag.Int("layers", 2, "GNN layers")
	hidden := flag.Int("hidden", 64, "hidden width")
	strategy := flag.String("strategy", "ripple", "maintenance strategy: ripple or rc")
	bs := flag.Int("bs", 100, "update batch size (leader)")
	batches := flag.Int("batches", 10, "number of batches to stream (leader)")
	stream := flag.Int("stream", 3000, "update stream length")
	seed := flag.Int64("seed", 42, "shared seed")
	timeout := flag.Duration("timeout", 60*time.Second, "mesh connect timeout")
	dataDir := flag.String("data-dir", "", "durability: leader WAL + barrier-checkpoint manifests under this (rank-shared) directory; recover/resume from it on boot")
	ckptEvery := flag.Int("checkpoint-every", 5, "leader: barrier checkpoint interval in batches (0 = never, recovery replays the whole WAL)")
	flag.Parse()

	cfg := rankConfig{
		Role: *role, Rank: *rank, Addrs: strings.Split(*addrsFlag, ","),
		Dataset: *ds, Scale: *scale, Workload: *workload, Layers: *layers, Hidden: *hidden,
		Strategy: *strategy, BatchSize: *bs, Batches: *batches, Stream: *stream,
		Seed: *seed, Timeout: *timeout, DataDir: *dataDir, CkptEvery: *ckptEvery,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "rippled:", err)
		os.Exit(1)
	}
}

// rankConfig carries one rank's flags. Every rank of a deployment must
// share the world-defining fields (Dataset..Seed) verbatim.
type rankConfig struct {
	Role  string
	Rank  int
	Addrs []string // one per worker, leader last

	Dataset  string
	Scale    float64
	Workload string
	Layers   int
	Hidden   int

	Strategy  string
	BatchSize int
	Batches   int
	Stream    int
	Seed      int64
	Timeout   time.Duration

	DataDir   string // "" = not durable
	CkptEvery int
}

// sharedWorld is the deterministic state every rank derives identically
// from the shared flags: the bootstrap snapshot, the update stream, the
// model, and the partition placement. With -data-dir and an existing
// barrier-checkpoint manifest, the placement (and each rank's restart
// state) comes from the manifest instead — every rank reads the same
// shared directory, so the multi-process determinism contract holds.
type sharedWorld struct {
	k     int
	wl    *dataset.Workload
	model *gnn.Model
	own   *cluster.Ownership
	strat cluster.Strategy

	// Manifest recovery state (nil/zero without -data-dir or before the
	// first checkpoint): the checkpointed topology, embeddings, and the
	// number of batches the manifest covers.
	ckptGraph *graph.Graph
	ckptEmb   *gnn.Embeddings
	ckptEpoch uint64
}

// buildShared regenerates the shared world from the config.
func buildShared(cfg rankConfig) (*sharedWorld, error) {
	if len(cfg.Addrs) < 2 {
		return nil, fmt.Errorf("-addrs needs at least one worker plus the leader, got %q", strings.Join(cfg.Addrs, ","))
	}
	strat := cluster.StratRipple
	switch cfg.Strategy {
	case "ripple":
	case "rc":
		strat = cluster.StratRC
	default:
		return nil, fmt.Errorf("unknown -strategy %q (want ripple or rc)", cfg.Strategy)
	}
	spec, err := dataset.ByName(cfg.Dataset, cfg.Scale)
	if err != nil {
		return nil, err
	}
	fmt.Printf("[%s] generating %s at scale %v (n=%d)...\n", cfg.Role, cfg.Dataset, cfg.Scale, spec.NumVertices)
	wl, err := dataset.Build(spec, dataset.StreamConfig{Total: cfg.Stream, HoldoutFrac: 0.10, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	dims := []int{spec.FeatureDim}
	for i := 1; i < cfg.Layers; i++ {
		dims = append(dims, cfg.Hidden)
	}
	dims = append(dims, spec.NumClasses)
	model, err := gnn.NewWorkload(cfg.Workload, dims, cfg.Seed)
	if err != nil {
		return nil, err
	}
	k := len(cfg.Addrs) - 1 // last address is the leader
	sh := &sharedWorld{k: k, wl: wl, model: model, strat: strat}
	if cfg.DataDir != "" {
		if err := loadNewestManifest(cfg.DataDir, sh); err != nil {
			return nil, err
		}
	}
	if sh.ckptGraph != nil {
		fmt.Printf("[%s] resuming from checkpoint manifest at batch %d\n", cfg.Role, sh.ckptEpoch)
	} else {
		assign, err := partition.Multilevel(wl.Snapshot, k, partition.DefaultMultilevelOptions)
		if err != nil {
			return nil, err
		}
		sh.own = cluster.BuildOwnership(assign)
	}
	return sh, nil
}

// manifestEpochs lists the batch counts of the checkpoint manifests in
// dir, newest first.
func manifestEpochs(dir string) []uint64 {
	return wal.ListEpochFiles(dir, "ckpt-", ".manifest")
}

func manifestPath(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%016x.manifest", epoch))
}

// loadNewestManifest fills sh's recovery state from the newest loadable
// manifest in dir (skipping unreadable ones); no manifest leaves sh on
// the bootstrap path.
func loadNewestManifest(dir string, sh *sharedWorld) error {
	for _, epoch := range manifestEpochs(dir) {
		f, err := os.Open(manifestPath(dir, epoch))
		if err != nil {
			continue
		}
		g, assign, emb, err := cluster.LoadManifest(f)
		f.Close()
		if err != nil {
			fmt.Printf("[warn] skipping unreadable manifest at batch %d: %v\n", epoch, err)
			continue
		}
		if assign.K != sh.k {
			return fmt.Errorf("manifest at batch %d partitions %d workers, -addrs implies %d", epoch, assign.K, sh.k)
		}
		sh.ckptGraph, sh.ckptEmb, sh.ckptEpoch = g, emb, epoch
		sh.own = cluster.BuildOwnership(assign)
		return nil
	}
	return nil
}

// startWorker dials the mesh and builds one worker rank over the shared
// world — from the checkpoint manifest when one exists (no forward pass),
// from the deterministic bootstrap otherwise. The caller runs (and is
// unblocked by the leader's shutdown of) worker.Run, then owns closing
// the returned conn.
func startWorker(sh *sharedWorld, cfg rankConfig) (*cluster.Worker, *transport.TCPConn, error) {
	if cfg.Rank < 0 || cfg.Rank >= sh.k {
		return nil, nil, fmt.Errorf("-rank %d out of [0,%d)", cfg.Rank, sh.k)
	}
	g, emb := sh.ckptGraph, sh.ckptEmb
	if emb == nil {
		g = sh.wl.Snapshot
		var err error
		emb, err = gnn.Forward(g, sh.model, sh.wl.Features)
		if err != nil {
			return nil, nil, err
		}
	}
	conn, err := transport.DialTCP(cfg.Rank, cfg.Addrs, cfg.Timeout)
	if err != nil {
		return nil, nil, err
	}
	w, err := cluster.NewWorker(cfg.Rank, conn, sh.k, sh.model, sh.own, sh.strat, g, emb)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	return w, conn, nil
}

// runLeader dials the mesh as the leader, streams the workload's batches,
// and shuts the workers down. With -data-dir the leader is durable: it
// replays the WAL tail left by a previous run (the workers, booted from
// the same manifest, catch up through the normal batch path), resumes the
// stream at the first unapplied batch, writes every new batch ahead to
// the WAL, and cuts barrier-checkpoint manifests every -checkpoint-every
// batches plus once at the end of the stream.
func runLeader(sh *sharedWorld, cfg rankConfig) error {
	conn, err := transport.DialTCP(sh.k, cfg.Addrs, cfg.Timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	leader := cluster.NewLeader(conn, sh.own, transport.TenGigE)
	defer leader.Shutdown()

	all := sh.wl.Batches(cfg.BatchSize)
	if cfg.Batches > 0 && len(all) > cfg.Batches {
		all = all[:cfg.Batches]
	}

	var wlog *wal.Log
	var shadow *graph.Graph
	applied := uint64(0)
	if cfg.DataDir != "" {
		// The leader's topology shadow: the checkpointed topology or the
		// bootstrap snapshot, mirroring every applied batch so the next
		// manifest records the current graph.
		shadow = sh.ckptGraph
		if shadow == nil {
			shadow = sh.wl.CloneSnapshot()
		}
		wlog, err = wal.Open(filepath.Join(cfg.DataDir, "wal"), wal.Config{})
		if err != nil {
			return err
		}
		defer wlog.Close()
		applied = sh.ckptEpoch
		err = wlog.Replay(sh.ckptEpoch, func(epoch uint64, payload []byte) error {
			batch, err := cluster.DecodeUpdates(payload)
			if err != nil {
				return err
			}
			if epoch != applied+1 {
				return fmt.Errorf("wal gap: record for batch %d after %d", epoch, applied)
			}
			if _, err := leader.ApplyBatch(batch); err != nil {
				return err
			}
			mirrorTopology(shadow, batch)
			applied++
			return nil
		})
		if err != nil {
			return fmt.Errorf("replaying wal: %w", err)
		}
		if recovered := applied - sh.ckptEpoch; recovered > 0 {
			fmt.Printf("[leader] recovered %d batches from the WAL (resuming at batch %d)\n", recovered, applied)
		}
	}
	checkpoint := func() error {
		emb, err := leader.GatherState()
		if err != nil {
			return err
		}
		err = wal.WriteFileAtomic(manifestPath(cfg.DataDir, applied), func(w io.Writer) error {
			return cluster.WriteManifest(w, shadow, sh.own, emb)
		})
		if err != nil {
			return fmt.Errorf("writing manifest: %w", err)
		}
		for _, old := range manifestEpochs(cfg.DataDir) {
			if old != applied {
				os.Remove(manifestPath(cfg.DataDir, old))
			}
		}
		fmt.Printf("[leader] barrier checkpoint at batch %d\n", applied)
		return wlog.MarkCheckpoint(applied)
	}

	if int(applied) >= len(all) {
		fmt.Printf("[leader] stream already complete at batch %d; nothing to do\n", applied)
		return nil
	}
	fmt.Printf("[leader] streaming batches %d..%d of %d updates to %d workers (%s, %s %dL)\n",
		applied, len(all)-1, cfg.BatchSize, sh.k, cfg.Strategy, cfg.Workload, cfg.Layers)
	var updates, sinceCkpt int
	var total time.Duration
	for i := int(applied); i < len(all); i++ {
		b := all[i]
		if wlog != nil {
			if err := wlog.Append(uint64(i+1), cluster.EncodeUpdates(b)); err != nil {
				return err
			}
		}
		res, err := leader.ApplyBatch(b)
		if err != nil {
			return err
		}
		if shadow != nil {
			mirrorTopology(shadow, b)
		}
		applied++
		updates += res.Updates
		total += res.WallTime
		fmt.Printf("  batch %2d: wall=%-12v affected=%-8d commBytes=%-10d simLat=%v\n",
			i, res.WallTime.Round(time.Microsecond), res.Affected, res.CommBytes, res.SimLatency().Round(time.Microsecond))
		if wlog != nil && cfg.CkptEvery > 0 {
			if sinceCkpt++; sinceCkpt >= cfg.CkptEvery {
				if err := checkpoint(); err != nil {
					return err
				}
				sinceCkpt = 0
			}
		}
	}
	if wlog != nil && cfg.CkptEvery > 0 && sinceCkpt > 0 {
		if err := checkpoint(); err != nil {
			return err
		}
	}
	if total > 0 {
		fmt.Printf("[leader] throughput %.1f up/s over TCP (wall time)\n", float64(updates)/total.Seconds())
	}
	return nil
}

// mirrorTopology applies a batch's structural changes to the leader's
// shadow graph (features live on the workers; the manifest only needs
// topology).
func mirrorTopology(g *graph.Graph, batch []engine.Update) {
	for _, u := range batch {
		switch u.Kind {
		case engine.EdgeAdd:
			_ = g.AddEdge(u.U, u.V, u.Weight)
		case engine.EdgeDelete:
			_, _ = g.RemoveEdge(u.U, u.V)
		}
	}
}

func run(cfg rankConfig) error {
	sh, err := buildShared(cfg)
	if err != nil {
		return err
	}
	switch cfg.Role {
	case "worker":
		w, conn, err := startWorker(sh, cfg)
		if err != nil {
			return err
		}
		defer conn.Close()
		fmt.Printf("[worker %d] serving %d local vertices\n", cfg.Rank, sh.own.NumLocal(cfg.Rank))
		return w.Run()
	case "leader":
		return runLeader(sh, cfg)
	default:
		return fmt.Errorf("unknown -role %q (want worker or leader)", cfg.Role)
	}
}
