// Command rippled runs one rank of a real multi-process Ripple cluster
// over TCP — the deployment mode corresponding to the paper's MPI cluster.
// Every process deterministically regenerates the same synthetic dataset,
// model and partition from the shared flags (a real deployment would load
// pre-partitioned state from storage), then either serves a partition
// (worker) or streams the update workload (leader).
//
// Example 3-worker run on one machine (4 terminals):
//
//	rippled -role worker -rank 0 -addrs :7701,:7702,:7703,:7700
//	rippled -role worker -rank 1 -addrs :7701,:7702,:7703,:7700
//	rippled -role worker -rank 2 -addrs :7701,:7702,:7703,:7700
//	rippled -role leader           -addrs :7701,:7702,:7703,:7700
//
// The address list has one entry per worker rank plus the leader's address
// last. All ranks must use identical -dataset/-scale/-workload/… flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ripple/internal/cluster"
	"ripple/internal/dataset"
	"ripple/internal/gnn"
	"ripple/internal/partition"
	"ripple/internal/transport"
)

func main() {
	role := flag.String("role", "", "worker or leader")
	rank := flag.Int("rank", 0, "worker rank in [0, #workers)")
	addrsFlag := flag.String("addrs", "", "comma-separated listen addresses: one per worker, leader last")
	ds := flag.String("dataset", "arxiv", "dataset shape: arxiv, reddit, products, papers")
	scale := flag.Float64("scale", 0.05, "dataset scale (fraction of published |V|)")
	workload := flag.String("workload", "GC-S", "model workload: GC-S, GS-S, GC-M, GI-S, GC-W")
	layers := flag.Int("layers", 2, "GNN layers")
	hidden := flag.Int("hidden", 64, "hidden width")
	strategy := flag.String("strategy", "ripple", "maintenance strategy: ripple or rc")
	bs := flag.Int("bs", 100, "update batch size (leader)")
	batches := flag.Int("batches", 10, "number of batches to stream (leader)")
	stream := flag.Int("stream", 3000, "update stream length")
	seed := flag.Int64("seed", 42, "shared seed")
	timeout := flag.Duration("timeout", 60*time.Second, "mesh connect timeout")
	flag.Parse()

	cfg := rankConfig{
		Role: *role, Rank: *rank, Addrs: strings.Split(*addrsFlag, ","),
		Dataset: *ds, Scale: *scale, Workload: *workload, Layers: *layers, Hidden: *hidden,
		Strategy: *strategy, BatchSize: *bs, Batches: *batches, Stream: *stream,
		Seed: *seed, Timeout: *timeout,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "rippled:", err)
		os.Exit(1)
	}
}

// rankConfig carries one rank's flags. Every rank of a deployment must
// share the world-defining fields (Dataset..Seed) verbatim.
type rankConfig struct {
	Role  string
	Rank  int
	Addrs []string // one per worker, leader last

	Dataset  string
	Scale    float64
	Workload string
	Layers   int
	Hidden   int

	Strategy  string
	BatchSize int
	Batches   int
	Stream    int
	Seed      int64
	Timeout   time.Duration
}

// sharedWorld is the deterministic state every rank derives identically
// from the shared flags: the bootstrap snapshot, the update stream, the
// model, and the partition placement.
type sharedWorld struct {
	k     int
	wl    *dataset.Workload
	model *gnn.Model
	own   *cluster.Ownership
	strat cluster.Strategy
}

// buildShared regenerates the shared world from the config.
func buildShared(cfg rankConfig) (*sharedWorld, error) {
	if len(cfg.Addrs) < 2 {
		return nil, fmt.Errorf("-addrs needs at least one worker plus the leader, got %q", strings.Join(cfg.Addrs, ","))
	}
	strat := cluster.StratRipple
	switch cfg.Strategy {
	case "ripple":
	case "rc":
		strat = cluster.StratRC
	default:
		return nil, fmt.Errorf("unknown -strategy %q (want ripple or rc)", cfg.Strategy)
	}
	spec, err := dataset.ByName(cfg.Dataset, cfg.Scale)
	if err != nil {
		return nil, err
	}
	fmt.Printf("[%s] generating %s at scale %v (n=%d)...\n", cfg.Role, cfg.Dataset, cfg.Scale, spec.NumVertices)
	wl, err := dataset.Build(spec, dataset.StreamConfig{Total: cfg.Stream, HoldoutFrac: 0.10, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	dims := []int{spec.FeatureDim}
	for i := 1; i < cfg.Layers; i++ {
		dims = append(dims, cfg.Hidden)
	}
	dims = append(dims, spec.NumClasses)
	model, err := gnn.NewWorkload(cfg.Workload, dims, cfg.Seed)
	if err != nil {
		return nil, err
	}
	k := len(cfg.Addrs) - 1 // last address is the leader
	assign, err := partition.Multilevel(wl.Snapshot, k, partition.DefaultMultilevelOptions)
	if err != nil {
		return nil, err
	}
	return &sharedWorld{k: k, wl: wl, model: model, own: cluster.BuildOwnership(assign), strat: strat}, nil
}

// startWorker dials the mesh and builds one worker rank over the shared
// world. The caller runs (and is unblocked by the leader's shutdown of)
// worker.Run, then owns closing the returned conn.
func startWorker(sh *sharedWorld, cfg rankConfig) (*cluster.Worker, *transport.TCPConn, error) {
	if cfg.Rank < 0 || cfg.Rank >= sh.k {
		return nil, nil, fmt.Errorf("-rank %d out of [0,%d)", cfg.Rank, sh.k)
	}
	emb, err := gnn.Forward(sh.wl.Snapshot, sh.model, sh.wl.Features)
	if err != nil {
		return nil, nil, err
	}
	conn, err := transport.DialTCP(cfg.Rank, cfg.Addrs, cfg.Timeout)
	if err != nil {
		return nil, nil, err
	}
	w, err := cluster.NewWorker(cfg.Rank, conn, sh.k, sh.model, sh.own, sh.strat, sh.wl.Snapshot, emb)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	return w, conn, nil
}

// runLeader dials the mesh as the leader, streams the workload's batches,
// and shuts the workers down.
func runLeader(sh *sharedWorld, cfg rankConfig) error {
	conn, err := transport.DialTCP(sh.k, cfg.Addrs, cfg.Timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	leader := cluster.NewLeader(conn, sh.own, transport.TenGigE)
	defer leader.Shutdown()

	all := sh.wl.Batches(cfg.BatchSize)
	if cfg.Batches > 0 && len(all) > cfg.Batches {
		all = all[:cfg.Batches]
	}
	fmt.Printf("[leader] streaming %d batches of %d updates to %d workers (%s, %s %dL)\n",
		len(all), cfg.BatchSize, sh.k, cfg.Strategy, cfg.Workload, cfg.Layers)
	var updates int
	var total time.Duration
	for i, b := range all {
		res, err := leader.ApplyBatch(b)
		if err != nil {
			return err
		}
		updates += res.Updates
		total += res.WallTime
		fmt.Printf("  batch %2d: wall=%-12v affected=%-8d commBytes=%-10d simLat=%v\n",
			i, res.WallTime.Round(time.Microsecond), res.Affected, res.CommBytes, res.SimLatency().Round(time.Microsecond))
	}
	if total > 0 {
		fmt.Printf("[leader] throughput %.1f up/s over TCP (wall time)\n", float64(updates)/total.Seconds())
	}
	return nil
}

func run(cfg rankConfig) error {
	sh, err := buildShared(cfg)
	if err != nil {
		return err
	}
	switch cfg.Role {
	case "worker":
		w, conn, err := startWorker(sh, cfg)
		if err != nil {
			return err
		}
		defer conn.Close()
		fmt.Printf("[worker %d] serving %d local vertices\n", cfg.Rank, sh.own.NumLocal(cfg.Rank))
		return w.Run()
	case "leader":
		return runLeader(sh, cfg)
	default:
		return fmt.Errorf("unknown -role %q (want worker or leader)", cfg.Role)
	}
}
