package main

import (
	"net/http/httptest"
	"testing"
	"time"

	"ripple/internal/obs"
)

// TestRankMetricsExposition pins the rippled /metrics surface: both roles
// register the full stable series set with role/rank constant labels, and
// the exposition lints clean at ≥30 series even before the mesh is up
// (nil conn/WAL scrape as zeros, not as panics or missing series).
func TestRankMetricsExposition(t *testing.T) {
	met := newRankMetrics(rankConfig{Role: "leader", Rank: 3})
	met.batches.Inc()
	met.updates.Add(100)
	met.wallH.Observe(3 * time.Millisecond)
	met.simH.Observe(40 * time.Microsecond)
	met.streamLen.Set(10)

	w := httptest.NewRecorder()
	met.reg.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != 200 {
		t.Fatalf("GET /metrics: status %d", w.Code)
	}
	exp, err := obs.LintExposition(w.Body.Bytes())
	if err != nil {
		t.Fatalf("exposition lint: %v\n%s", err, w.Body.String())
	}
	if n := exp.SeriesCount(); n < 30 {
		t.Errorf("series count = %d, want >= 30", n)
	}
	if n := exp.HistogramCount(); n < 2 {
		t.Errorf("histogram count = %d, want >= 2", n)
	}
	role := obs.L("role", "leader")
	rank := obs.L("rank", "3")
	if got, ok := exp.Value("rippled_batches_total", role, rank); !ok || got != 1 {
		t.Errorf("rippled_batches_total{role,rank} = %v (present=%v), want 1", got, ok)
	}
	if got, ok := exp.Value("rippled_updates_total", role, rank); !ok || got != 100 {
		t.Errorf("rippled_updates_total = %v (present=%v), want 100", got, ok)
	}
	// Leader-only series exist (as zeros) on a rank with no WAL/conn yet.
	if _, ok := exp.Value("rippled_wal_appends_total", role, rank); !ok {
		t.Error("rippled_wal_appends_total missing before WAL is open")
	}
	if _, ok := exp.Value("rippled_transport_bytes_total", role, rank, obs.L("dir", "sent")); !ok {
		t.Error("rippled_transport_bytes_total{dir=sent} missing before the mesh is up")
	}
}
