package main

import (
	"net"
	"sync"
	"testing"
	"time"

	"ripple/internal/engine"
	"ripple/internal/gnn"
)

// freeLoopbackAddrs reserves n distinct free loopback ports and returns
// their addresses, so parallel CI jobs (or lingering sockets) cannot
// collide with hardcoded ports.
func freeLoopbackAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	// Keep all n held until each is picked, so the same port is never
	// handed out twice; DialTCP re-binds them immediately after.
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// TestSmokeLeaderAndWorkersOverTCP boots the real deployment path
// in-process — leader + 2 workers meshed over loopback TCP, every rank
// deriving the shared world from identical flags exactly as separate
// rippled processes would — streams the workload, and checks the workers'
// final embeddings converge to a single-node engine fed the same batches.
func TestSmokeLeaderAndWorkersOverTCP(t *testing.T) {
	base := rankConfig{
		Addrs:     freeLoopbackAddrs(t, 3),
		Dataset:   "arxiv",
		Scale:     0.002, // ~340 vertices: big enough to partition, fast to regenerate per rank
		Workload:  "GC-S",
		Layers:    2,
		Hidden:    16,
		Strategy:  "ripple",
		BatchSize: 25,
		Batches:   4,
		Stream:    150,
		Seed:      42,
		Timeout:   15 * time.Second,
	}

	// Workers first: each builds its own shared world from the flags (the
	// multi-process determinism contract) and runs until the leader's
	// shutdown.
	type workerHandle struct {
		sh  *sharedWorld
		w   interface{ Embeddings() *gnn.Embeddings }
		err error
	}
	handles := make([]workerHandle, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := base
			cfg.Role, cfg.Rank = "worker", r
			sh, err := buildShared(cfg)
			if err != nil {
				handles[r].err = err
				return
			}
			w, conn, err := startWorker(sh, cfg)
			if err != nil {
				handles[r].err = err
				return
			}
			defer conn.Close()
			handles[r] = workerHandle{sh: sh, w: w}
			if err := w.Run(); err != nil {
				handles[r].err = err
			}
		}(r)
	}

	// The leader streams the batches through the exact main() entry point.
	leaderCfg := base
	leaderCfg.Role = "leader"
	if err := run(leaderCfg); err != nil {
		t.Fatalf("leader: %v", err)
	}
	wg.Wait()
	for r, h := range handles {
		if h.err != nil {
			t.Fatalf("worker %d: %v", r, h.err)
		}
	}

	// Ground truth: a single-node engine fed the identical batch stream.
	gtCfg := base
	gtCfg.Role = "truth"
	sh, err := buildShared(gtCfg)
	if err != nil {
		t.Fatal(err)
	}
	g := sh.wl.CloneSnapshot()
	emb, err := gnn.Forward(g, sh.model, sh.wl.Features)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.NewRipple(g, sh.model, emb, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	all := sh.wl.Batches(base.BatchSize)[:base.Batches]
	var streamed int
	for i, b := range all {
		if _, err := eng.ApplyBatch(b); err != nil {
			t.Fatalf("ground-truth batch %d: %v", i, err)
		}
		streamed += len(b)
	}
	if streamed == 0 {
		t.Fatal("smoke stream was empty; nothing was exercised")
	}

	truth := eng.Embeddings()
	const tol = 5e-3
	for r, h := range handles {
		own := h.sh.own
		got := h.w.Embeddings()
		for li, gid := range own.Locals[r] {
			for l := range truth.H {
				if d := got.H[l][li].MaxAbsDiff(truth.H[l][gid]); d > tol {
					t.Fatalf("worker %d vertex %d layer %d drift %v after %d streamed updates", r, gid, l, d, streamed)
				}
			}
		}
	}
}
