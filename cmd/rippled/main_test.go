package main

import (
	"net"
	"sync"
	"testing"
	"time"

	"ripple/internal/cluster"
	"ripple/internal/engine"
	"ripple/internal/gnn"
)

// freeLoopbackAddrs reserves n distinct free loopback ports and returns
// their addresses, so parallel CI jobs (or lingering sockets) cannot
// collide with hardcoded ports.
func freeLoopbackAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	// Keep all n held until each is picked, so the same port is never
	// handed out twice; DialTCP re-binds them immediately after.
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// runRanks boots one leader + (k-1 from base.Addrs) workers in-process
// over loopback TCP — every rank deriving its world from the flags and
// data dir exactly as separate rippled processes would — and returns the
// workers' handles after the leader's run completes.
type rankHandle struct {
	sh  *sharedWorld
	w   *cluster.Worker
	err error
}

func runRanks(t *testing.T, base rankConfig) []rankHandle {
	t.Helper()
	k := len(base.Addrs) - 1
	handles := make([]rankHandle, k)
	var wg sync.WaitGroup
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := base
			cfg.Role, cfg.Rank = "worker", r
			sh, err := buildShared(cfg)
			if err != nil {
				handles[r].err = err
				return
			}
			w, conn, err := startWorker(sh, cfg)
			if err != nil {
				handles[r].err = err
				return
			}
			defer conn.Close()
			handles[r].sh, handles[r].w = sh, w
			if err := w.Run(); err != nil {
				handles[r].err = err
			}
		}(r)
	}
	leaderCfg := base
	leaderCfg.Role = "leader"
	if err := run(leaderCfg); err != nil {
		t.Fatalf("leader: %v", err)
	}
	wg.Wait()
	for r, h := range handles {
		if h.err != nil {
			t.Fatalf("worker %d: %v", r, h.err)
		}
	}
	return handles
}

// TestDurableResumeOverTCP is the deployment-level recovery drill: a run
// that stops mid-stream (batches only in the WAL, no manifest yet), a
// resumed run that replays the WAL, streams the rest and cuts barrier
// manifests, and a third boot whose workers rebuild purely from the
// manifest — each time the workers' state must match a single-node engine
// fed the identical full stream.
func TestDurableResumeOverTCP(t *testing.T) {
	dir := t.TempDir()
	base := rankConfig{
		Dataset:   "arxiv",
		Scale:     0.002,
		Workload:  "GC-S",
		Layers:    2,
		Hidden:    16,
		Strategy:  "ripple",
		BatchSize: 25,
		Stream:    150,
		Seed:      42,
		Timeout:   15 * time.Second,
		DataDir:   dir,
	}

	// Ground truth: a single-node engine fed the full 4-batch stream.
	gtCfg := base
	gtCfg.Role, gtCfg.Addrs, gtCfg.DataDir = "truth", []string{"x", "y", "z"}, "" // 2 workers implied; no recovery
	sh, err := buildShared(gtCfg)
	if err != nil {
		t.Fatal(err)
	}
	g := sh.wl.CloneSnapshot()
	emb, err := gnn.Forward(g, sh.model, sh.wl.Features)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.NewRipple(g, sh.model, emb, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	all := sh.wl.Batches(base.BatchSize)[:4]
	for i, b := range all {
		if _, err := eng.ApplyBatch(b); err != nil {
			t.Fatalf("ground-truth batch %d: %v", i, err)
		}
	}
	truth := eng.Embeddings()

	assertMatchesTruth := func(phase string, handles []rankHandle) {
		t.Helper()
		const tol = 5e-3
		for r, h := range handles {
			got := h.w.Embeddings()
			for li, gid := range h.sh.own.Locals[r] {
				for l := range truth.H {
					if d := got.H[l][li].MaxAbsDiff(truth.H[l][gid]); d > tol {
						t.Fatalf("%s: worker %d vertex %d layer %d drift %v", phase, r, gid, l, d)
					}
				}
			}
		}
	}

	// Phase 1: stream 2 of 4 batches with checkpoints disabled — the run
	// "dies" with its history only in the WAL.
	p1 := base
	p1.Addrs, p1.Batches, p1.CkptEvery = freeLoopbackAddrs(t, 3), 2, 0
	runRanks(t, p1)
	if got := manifestEpochs(dir); len(got) != 0 {
		t.Fatalf("phase 1 left manifests %v, wanted WAL only", got)
	}

	// Phase 2: reboot; the leader replays the 2 WAL batches over freshly
	// bootstrapped workers, streams batches 2..3, and checkpoints.
	p2 := base
	p2.Addrs, p2.Batches, p2.CkptEvery = freeLoopbackAddrs(t, 3), 4, 2
	assertMatchesTruth("wal-replay resume", runRanks(t, p2))
	if got := manifestEpochs(dir); len(got) != 1 || got[0] != 4 {
		t.Fatalf("phase 2 manifests %v, want exactly one at batch 4", got)
	}

	// Phase 3: reboot again; workers rebuild purely from the manifest (no
	// forward pass), the leader finds nothing left to stream.
	p3 := base
	p3.Addrs, p3.Batches, p3.CkptEvery = freeLoopbackAddrs(t, 3), 4, 2
	assertMatchesTruth("manifest boot", runRanks(t, p3))
}

// TestSmokeLeaderAndWorkersOverTCP boots the real deployment path
// in-process — leader + 2 workers meshed over loopback TCP, every rank
// deriving the shared world from identical flags exactly as separate
// rippled processes would — streams the workload, and checks the workers'
// final embeddings converge to a single-node engine fed the same batches.
func TestSmokeLeaderAndWorkersOverTCP(t *testing.T) {
	base := rankConfig{
		Addrs:     freeLoopbackAddrs(t, 3),
		Dataset:   "arxiv",
		Scale:     0.002, // ~340 vertices: big enough to partition, fast to regenerate per rank
		Workload:  "GC-S",
		Layers:    2,
		Hidden:    16,
		Strategy:  "ripple",
		BatchSize: 25,
		Batches:   4,
		Stream:    150,
		Seed:      42,
		Timeout:   15 * time.Second,
	}

	// Workers first: each builds its own shared world from the flags (the
	// multi-process determinism contract) and runs until the leader's
	// shutdown.
	type workerHandle struct {
		sh  *sharedWorld
		w   interface{ Embeddings() *gnn.Embeddings }
		err error
	}
	handles := make([]workerHandle, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := base
			cfg.Role, cfg.Rank = "worker", r
			sh, err := buildShared(cfg)
			if err != nil {
				handles[r].err = err
				return
			}
			w, conn, err := startWorker(sh, cfg)
			if err != nil {
				handles[r].err = err
				return
			}
			defer conn.Close()
			handles[r] = workerHandle{sh: sh, w: w}
			if err := w.Run(); err != nil {
				handles[r].err = err
			}
		}(r)
	}

	// The leader streams the batches through the exact main() entry point.
	leaderCfg := base
	leaderCfg.Role = "leader"
	if err := run(leaderCfg); err != nil {
		t.Fatalf("leader: %v", err)
	}
	wg.Wait()
	for r, h := range handles {
		if h.err != nil {
			t.Fatalf("worker %d: %v", r, h.err)
		}
	}

	// Ground truth: a single-node engine fed the identical batch stream.
	gtCfg := base
	gtCfg.Role = "truth"
	sh, err := buildShared(gtCfg)
	if err != nil {
		t.Fatal(err)
	}
	g := sh.wl.CloneSnapshot()
	emb, err := gnn.Forward(g, sh.model, sh.wl.Features)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.NewRipple(g, sh.model, emb, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	all := sh.wl.Batches(base.BatchSize)[:base.Batches]
	var streamed int
	for i, b := range all {
		if _, err := eng.ApplyBatch(b); err != nil {
			t.Fatalf("ground-truth batch %d: %v", i, err)
		}
		streamed += len(b)
	}
	if streamed == 0 {
		t.Fatal("smoke stream was empty; nothing was exercised")
	}

	truth := eng.Embeddings()
	const tol = 5e-3
	for r, h := range handles {
		own := h.sh.own
		got := h.w.Embeddings()
		for li, gid := range own.Locals[r] {
			for l := range truth.H {
				if d := got.H[l][li].MaxAbsDiff(truth.H[l][gid]); d > tol {
					t.Fatalf("worker %d vertex %d layer %d drift %v after %d streamed updates", r, gid, l, d, streamed)
				}
			}
		}
	}
}
