// Command rippleload is the load harness for rippleserve: an open-loop
// mixed read/write generator that drives the HTTP API and reports the
// serving numbers the admission pipeline is judged by — sustained QPS,
// read latency quantiles (p50/p99/p999), write latency, epoch-publish
// lag, fsyncs per admitted batch, and checkpoint stall time — as a JSON
// document (BENCH_serve.json by convention).
//
// Two modes:
//
//   - Against a running daemon: rippleload -addr host:port ...
//   - Self-hosted: rippleload -serve-bin ./rippleserve ... spawns the
//     daemon (durable, fsync on, loopback) per phase, drives it, tears it
//     down. -compare-serial runs two phases on the same build — the
//     serial write path (-pipeline-depth=-1) then the staged pipeline —
//     and reports the write-throughput speedup, which is the tentpole
//     claim a commit gate can assert on.
//
// Load shape: -rate is the target TOTAL arrival rate (ops/s) split by
// -read-ratio; arrivals are independent of completions (open loop), so a
// server that cannot keep up shows queueing latency, not a flattered
// closed-loop QPS. -rate 0 means closed loop: every worker issues
// back-to-back requests, measuring sustained capacity instead of
// latency-under-load. Reads draw from a hot set (-hot-frac of the
// vertices drawn with probability -hot-prob) over GET /label/{v};
// writes POST -write-batch feature updates through /update?sync=1, so
// every acknowledged write is a durable published epoch.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ripple/internal/obs"
)

func main() {
	addr := flag.String("addr", "", "drive an already-running rippleserve at this address (host:port)")
	serveBin := flag.String("serve-bin", "", "spawn this rippleserve binary per phase instead of using -addr")
	dataset := flag.String("dataset", "arxiv", "spawned daemon's dataset shape")
	scale := flag.Float64("scale", 0.002, "spawned daemon's dataset scale")
	duration := flag.Duration("duration", 10*time.Second, "measured load per phase")
	warmup := flag.Duration("warmup", 1*time.Second, "untimed warmup before each measured phase")
	rate := flag.Float64("rate", 0, "target total arrival rate in ops/s (open loop); 0 = closed loop at max capacity")
	readRatio := flag.Float64("read-ratio", 0.5, "fraction of arrivals that are reads")
	readRate := flag.Float64("read-rate", 0, "open-loop read arrival rate, overriding -rate/-read-ratio for reads only (0 = follow -rate, or closed loop)")
	writeRate := flag.Float64("write-rate", 0, "open-loop write arrival rate, overriding -rate/-read-ratio for writes only (0 = follow -rate, or closed loop)")
	writers := flag.Int("writers", 8, "concurrent write workers")
	readers := flag.Int("readers", 4, "concurrent read workers")
	writeBatch := flag.Int("write-batch", 1, "feature updates per write request")
	hotFrac := flag.Float64("hot-frac", 0.1, "fraction of vertices forming the read hot set")
	hotProb := flag.Float64("hot-prob", 0.9, "probability a read lands in the hot set")
	seed := flag.Int64("seed", 1, "generator seed")
	serveArgs := flag.String("serve-args", "", "extra space-separated flags for the spawned rippleserve (e.g. \"-hidden 8\")")
	out := flag.String("out", "BENCH_serve.json", "output JSON path (- for stdout; defaults to BENCH_recovery.json under -measure-recovery)")
	scrapeMetrics := flag.Bool("scrape-metrics", false, "scrape /metrics around each phase: lint the exposition, assert counter parity with /stats, fold counter deltas into the report, and save a mid-run snapshot")
	metricsOut := flag.String("metrics-out", "METRICS_snapshot.prom", "mid-run /metrics snapshot path with -scrape-metrics (phase name is inserted before the extension; empty disables the snapshot)")
	compareSerial := flag.Bool("compare-serial", false, "run a serial-baseline phase (-pipeline-depth=-1) before the pipelined phase and report the speedup (requires -serve-bin)")
	minWriteSpeedup := flag.Float64("min-write-speedup", 0, "with -compare-serial: fail unless pipelined/serial write throughput is at least this (0 = report only)")
	measureRecovery := flag.Bool("measure-recovery", false, "measure restart cost instead of serving load: codec bench + SIGKILL crash drills (serial vs pipelined) + delta checkpoint bytes (requires -serve-bin)")
	recoveryWrites := flag.Int("recovery-writes", 240, "sync writes per crash drill phase")
	recoveryTail := flag.Int("recovery-tail", 60, "writes after the mid-stream checkpoint: the WAL tail recovery must replay")
	recoveryScale := flag.Float64("recovery-scale", 0.1, "dataset scale for the crash drill daemons")
	codecScale := flag.Float64("codec-scale", 0.05, "dataset scale for the in-process checkpoint codec bench")
	minRecoverySpeedup := flag.Float64("min-recovery-speedup", 0, "with -measure-recovery: fail unless serial/pipelined recovery seconds is at least this (0 = report only)")
	minCkptSpeedup := flag.Float64("min-ckpt-speedup", 0, "with -measure-recovery: fail unless the sectioned checkpoint loads at least this much faster than the serial codec (0 = report only)")
	flag.Parse()

	if *measureRecovery {
		if *serveBin == "" {
			fmt.Fprintln(os.Stderr, "rippleload: -measure-recovery spawns its own daemons; it requires -serve-bin")
			os.Exit(1)
		}
		rout := *out
		if rout == "BENCH_serve.json" {
			rout = "BENCH_recovery.json"
		}
		rcfg := recoveryConfig{
			Dataset: *dataset, Scale: *recoveryScale, CodecScale: *codecScale,
			Writes: *recoveryWrites, Tail: *recoveryTail, Seed: *seed,
			MinRecoverySpeedup: *minRecoverySpeedup, MinCkptSpeedup: *minCkptSpeedup,
		}
		if err := runRecovery(rcfg, *serveBin, rout); err != nil {
			fmt.Fprintln(os.Stderr, "rippleload:", err)
			os.Exit(1)
		}
		return
	}

	cfg := loadConfig{
		Dataset: *dataset, Scale: *scale,
		Duration: *duration, Warmup: *warmup,
		Rate: *rate, ReadRatio: *readRatio,
		ReadRate: *readRate, WriteRate: *writeRate,
		Writers: *writers, Readers: *readers, WriteBatch: *writeBatch,
		HotFrac: *hotFrac, HotProb: *hotProb, Seed: *seed,
		ServeArgs:     strings.Fields(*serveArgs),
		ScrapeMetrics: *scrapeMetrics, MetricsOut: *metricsOut,
	}
	if err := run(cfg, *addr, *serveBin, *compareSerial, *minWriteSpeedup, *out); err != nil {
		fmt.Fprintln(os.Stderr, "rippleload:", err)
		os.Exit(1)
	}
}

type loadConfig struct {
	Dataset    string        `json:"dataset,omitempty"`
	Scale      float64       `json:"scale,omitempty"`
	Duration   time.Duration `json:"-"`
	Warmup     time.Duration `json:"-"`
	Rate       float64       `json:"rate_ops_per_s"` // 0 = closed loop
	ReadRatio  float64       `json:"read_ratio"`
	ReadRate   float64       `json:"read_rate_ops_per_s,omitempty"`  // per-class override
	WriteRate  float64       `json:"write_rate_ops_per_s,omitempty"` // per-class override
	ServeArgs  []string      `json:"serve_args,omitempty"`
	Writers    int           `json:"writers"`
	Readers    int           `json:"readers"`
	WriteBatch int           `json:"write_batch"`
	HotFrac    float64       `json:"hot_frac"`
	HotProb    float64       `json:"hot_prob"`
	Seed       int64         `json:"seed"`

	ScrapeMetrics bool   `json:"scrape_metrics,omitempty"`
	MetricsOut    string `json:"-"`
}

// report is the BENCH_serve.json document.
type report struct {
	Config     loadConfig    `json:"config"`
	DurationS  float64       `json:"duration_s"`
	Phases     []phaseResult `json:"phases"`
	SpeedupPct float64       `json:"write_qps_speedup_pipelined_vs_serial,omitempty"`
}

type latencySummary struct {
	Ops   int64   `json:"ops"`
	QPS   float64 `json:"qps"`
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	P999  float64 `json:"p999_ms"`
	MaxMS float64 `json:"max_ms"`
}

// phaseResult is one measured phase: client-side throughput/latency plus
// the server-side /stats delta over the measured window.
type phaseResult struct {
	Name          string         `json:"name"`
	Reads         latencySummary `json:"reads"`
	Writes        latencySummary `json:"writes"`
	Shed          int64          `json:"shed_arrivals"` // open-loop arrivals dropped: workers saturated AND queue full
	Errors        int64          `json:"errors"`
	EpochLagAtEnd int64          `json:"epoch_publish_lag_at_end"` // acked writes not yet published when load stopped

	WALAppends        uint64  `json:"wal_appends"`
	WALFsyncs         uint64  `json:"wal_fsyncs"`
	FsyncsPerAppend   float64 `json:"fsyncs_per_append"`
	CheckpointStallMS float64 `json:"checkpoint_stall_ms"`
	QueueWaitP99MS    float64 `json:"queue_wait_p99_ms"`
	FsyncWaitP99MS    float64 `json:"fsync_wait_p99_ms"`
	ApplyP99MS        float64 `json:"apply_p99_ms"`

	// Server-side stage breakdown over the measured window: exact-count
	// quantiles from differencing the /stats bucket vectors, so the perf
	// trajectory records where batches spent their time, not just
	// client-observed latencies.
	StageWaits map[string]stageWindow `json:"stage_waits,omitempty"`
	// Metrics holds the /metrics scrape summary (-scrape-metrics only).
	Metrics *metricsScrape `json:"metrics,omitempty"`
}

func run(cfg loadConfig, addr, serveBin string, compareSerial bool, minWriteSpeedup float64, out string) error {
	if addr == "" && serveBin == "" {
		return errors.New("need -addr (running daemon) or -serve-bin (spawn one)")
	}
	if compareSerial && serveBin == "" {
		return errors.New("-compare-serial spawns its own daemons; it requires -serve-bin")
	}

	rep := report{Config: cfg, DurationS: cfg.Duration.Seconds()}
	if compareSerial {
		for _, ph := range []struct {
			name  string
			depth int
		}{
			{"serial", -1},
			{"pipelined", 0},
		} {
			res, err := runSpawnedPhase(cfg, serveBin, ph.name, ph.depth)
			if err != nil {
				return fmt.Errorf("phase %s: %w", ph.name, err)
			}
			rep.Phases = append(rep.Phases, *res)
		}
		if s, p := rep.Phases[0].Writes.QPS, rep.Phases[1].Writes.QPS; s > 0 {
			rep.SpeedupPct = p / s
		}
	} else if serveBin != "" {
		res, err := runSpawnedPhase(cfg, serveBin, "pipelined", 0)
		if err != nil {
			return err
		}
		rep.Phases = append(rep.Phases, *res)
	} else {
		res, err := runPhase(cfg, "http://"+addr, "remote")
		if err != nil {
			return err
		}
		rep.Phases = append(rep.Phases, *res)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	for _, ph := range rep.Phases {
		fmt.Printf("  %-10s writes %8.0f/s (p99 %6.2fms)  reads %8.0f/s (p99 %6.2fms)  fsyncs/append %.3f\n",
			ph.Name, ph.Writes.QPS, ph.Writes.P99MS, ph.Reads.QPS, ph.Reads.P99MS, ph.FsyncsPerAppend)
	}
	if rep.SpeedupPct != 0 {
		fmt.Printf("  pipelined/serial write throughput: %.2fx\n", rep.SpeedupPct)
	}
	// The gate runs after the report is written: a failing threshold
	// still leaves the measured numbers on disk for the build log.
	if minWriteSpeedup > 0 && rep.SpeedupPct < minWriteSpeedup {
		return fmt.Errorf("pipelined/serial write speedup %.2fx below gate %.2fx (serial %.0f/s, pipelined %.0f/s)",
			rep.SpeedupPct, minWriteSpeedup, rep.Phases[0].Writes.QPS, rep.Phases[1].Writes.QPS)
	}
	return nil
}

// runSpawnedPhase boots a fresh durable fsync-enabled daemon at the given
// pipeline depth, runs one measured phase against it, and tears it down.
func runSpawnedPhase(cfg loadConfig, serveBin, name string, depth int) (*phaseResult, error) {
	dir, err := os.MkdirTemp("", "rippleload-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	port, err := freePort()
	if err != nil {
		return nil, err
	}
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	args := []string{
		"-addr", addr,
		"-dataset", cfg.Dataset,
		"-scale", fmt.Sprint(cfg.Scale),
		"-data-dir", dir,
		"-fsync",
		"-checkpoint-every", "256",
		"-pipeline-depth", fmt.Sprint(depth),
	}
	args = append(args, cfg.ServeArgs...)
	cmd := exec.Command(serveBin, args...)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	base := "http://" + addr
	if err := waitHealthy(base, 120*time.Second); err != nil {
		return nil, err
	}
	return runPhase(cfg, base, name)
}

func freePort() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port, nil
}

func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s not healthy after %v", base, timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// serverFacts reads the target's shape from /stats: how many vertices to
// spread load over and how wide a valid feature update must be.
func serverFacts(client *http.Client, base string) (vertices, featDim int, serving map[string]any, err error) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return 0, 0, nil, err
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, 0, nil, err
	}
	v, _ := body["vertices"].(float64)
	fd, _ := body["feature_dim"].(float64)
	sv, _ := body["serving"].(map[string]any)
	if v == 0 || fd == 0 || sv == nil {
		return 0, 0, nil, fmt.Errorf("/stats missing vertices/feature_dim/serving: %v", body)
	}
	return int(v), int(fd), sv, nil
}

func statU64(m map[string]any, k string) uint64  { f, _ := m[k].(float64); return uint64(f) }
func statI64(m map[string]any, k string) int64   { f, _ := m[k].(float64); return int64(f) }
func statF64(m map[string]any, k string) float64 { f, _ := m[k].(float64); return f }

// worker accumulates one goroutine's completions; merged after the run.
type worker struct {
	lat  []int64 // ns, measured window only
	ops  int64
	errs int64
}

func runPhase(cfg loadConfig, base, name string) (*phaseResult, error) {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Writers + cfg.Readers + 4,
		MaxIdleConnsPerHost: cfg.Writers + cfg.Readers + 4,
	}}
	vertices, featDim, before, err := serverFacts(client, base)
	if err != nil {
		return nil, err
	}
	hotN := int(float64(vertices) * cfg.HotFrac)
	if hotN < 1 {
		hotN = 1
	}

	// Pre-render write bodies (feature updates, rotating vertices) so the
	// generator does not JSON-encode on the hot path.
	bodies := prerenderWrites(cfg, vertices, featDim)

	var (
		measuring atomic.Bool
		stop      atomic.Bool
		shed      atomic.Int64
		acked     atomic.Int64 // sync writes acknowledged during measurement
	)
	// Open-loop arrival queues: the dispatcher ticks at the target rate
	// regardless of completions. Each class is open- or closed-loop on its
	// own: -read-rate/-write-rate override the -rate/-read-ratio split, so
	// a run can hold reads at a fixed arrival rate (comparable latency
	// across phases) while writes run closed loop at max capacity.
	readRate, writeRate := cfg.ReadRate, cfg.WriteRate
	if cfg.Rate > 0 {
		if readRate == 0 {
			readRate = cfg.Rate * cfg.ReadRatio
		}
		if writeRate == 0 {
			writeRate = cfg.Rate * (1 - cfg.ReadRatio)
		}
	}
	var readTok, writeTok chan struct{}
	dispatch := func(tok chan struct{}, rate float64) {
		interval := time.Duration(float64(time.Second) / rate)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for !stop.Load() {
			<-tick.C
			select {
			case tok <- struct{}{}:
			default:
				if measuring.Load() {
					shed.Add(1)
				}
			}
		}
	}
	if readRate > 0 {
		readTok = make(chan struct{}, 4096)
		go dispatch(readTok, readRate)
	}
	if writeRate > 0 {
		writeTok = make(chan struct{}, 4096)
		go dispatch(writeTok, writeRate)
	}

	var wg sync.WaitGroup
	readWs := make([]*worker, cfg.Readers)
	writeWs := make([]*worker, cfg.Writers)
	for i := range readWs {
		readWs[i] = &worker{}
		wg.Add(1)
		go func(w *worker, id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
			for !stop.Load() {
				if readTok != nil {
					select {
					case <-readTok:
					case <-time.After(10 * time.Millisecond):
						continue
					}
				}
				v := rng.Intn(vertices)
				if rng.Float64() < cfg.HotProb {
					v = rng.Intn(hotN)
				}
				start := time.Now()
				resp, err := client.Get(fmt.Sprintf("%s/label/%d", base, v))
				if err == nil {
					resp.Body.Close()
				}
				if measuring.Load() {
					if err != nil || resp.StatusCode != http.StatusOK {
						w.errs++
						continue
					}
					w.lat = append(w.lat, time.Since(start).Nanoseconds())
					w.ops++
				}
			}
		}(readWs[i], i)
	}
	for i := range writeWs {
		writeWs[i] = &worker{}
		wg.Add(1)
		go func(w *worker, id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + 1000 + int64(id)))
			for !stop.Load() {
				if writeTok != nil {
					select {
					case <-writeTok:
					case <-time.After(10 * time.Millisecond):
						continue
					}
				}
				body := bodies[rng.Intn(len(bodies))]
				start := time.Now()
				resp, err := client.Post(base+"/update?sync=1", "application/json", bytes.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
				if measuring.Load() {
					if err != nil || resp.StatusCode != http.StatusOK {
						w.errs++
						continue
					}
					w.lat = append(w.lat, time.Since(start).Nanoseconds())
					w.ops++
					acked.Add(1)
				}
			}
		}(writeWs[i], i)
	}

	time.Sleep(cfg.Warmup)
	_, _, before, err = serverFacts(client, base) // delta starts at the measured window
	if err != nil {
		stop.Store(true)
		wg.Wait()
		return nil, err
	}
	var expBefore *obs.Exposition
	var snapPath string
	if cfg.ScrapeMetrics {
		if expBefore, _, err = fetchMetrics(client, base); err != nil {
			stop.Store(true)
			wg.Wait()
			return nil, err
		}
	}
	measuring.Store(true)
	if cfg.ScrapeMetrics && cfg.MetricsOut != "" {
		// One scrape mid-window, under live load: the snapshot the CI
		// artifact keeps is what a Prometheus scraper would really see.
		time.Sleep(cfg.Duration / 2)
		if _, raw, err := fetchMetrics(client, base); err != nil {
			fmt.Fprintf(os.Stderr, "rippleload: mid-run metrics scrape: %v\n", err)
		} else {
			snapPath = snapshotPath(cfg.MetricsOut, name)
			if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "rippleload: writing %s: %v\n", snapPath, err)
				snapPath = ""
			}
		}
		time.Sleep(cfg.Duration - cfg.Duration/2)
	} else {
		time.Sleep(cfg.Duration)
	}
	measuring.Store(false)
	epochAtStop := int64(0)
	if _, _, atStop, err := serverFacts(client, base); err == nil {
		epochAtStop = statI64(atStop, "epoch")
	}
	stop.Store(true)
	wg.Wait()
	_, _, after, err := serverFacts(client, base)
	if err != nil {
		return nil, err
	}

	res := &phaseResult{Name: name, Shed: shed.Load()}
	res.Reads = summarize(readWs, cfg.Duration)
	res.Writes = summarize(writeWs, cfg.Duration)
	for _, w := range append(append([]*worker{}, readWs...), writeWs...) {
		res.Errors += w.errs
	}
	// Epoch-publish lag: how many acknowledged (durable, applied) writes
	// had not surfaced as published epochs the moment load stopped. With
	// ?sync=1 an ack implies publication, so any lag here is epochs from
	// the warmup/async tail — expected ~0.
	epochDelta := epochAtStop - statI64(before, "epoch")
	if lag := acked.Load() - epochDelta; lag > 0 {
		res.EpochLagAtEnd = lag
	}
	res.WALAppends = statU64(after, "wal_appends") - statU64(before, "wal_appends")
	res.WALFsyncs = statU64(after, "wal_fsyncs") - statU64(before, "wal_fsyncs")
	if res.WALAppends > 0 {
		res.FsyncsPerAppend = float64(res.WALFsyncs) / float64(res.WALAppends)
	}
	res.CheckpointStallMS = float64(statI64(after, "checkpoint_stall_ns")-statI64(before, "checkpoint_stall_ns")) / 1e6
	// Stage p99s come from the window's own bucket deltas when the server
	// exports them; the since-boot quantiles are the fallback.
	res.StageWaits = stageWaits(before, after)
	res.QueueWaitP99MS = windowP99MS(res.StageWaits, "queue_wait", statF64(after, "queue_wait_p99_ns"))
	res.FsyncWaitP99MS = windowP99MS(res.StageWaits, "fsync_wait", statF64(after, "fsync_wait_p99_ns"))
	res.ApplyP99MS = windowP99MS(res.StageWaits, "apply", statF64(after, "apply_p99_ns"))
	if cfg.ScrapeMetrics {
		expAfter, _, err := fetchMetrics(client, base)
		if err != nil {
			return nil, err
		}
		// Load has stopped and the final /stats read is in hand: the two
		// views describe the same quiesced state and must agree exactly.
		if err := metricsParity(expAfter, after); err != nil {
			return nil, err
		}
		res.Metrics = &metricsScrape{
			Series:     expAfter.SeriesCount(),
			Histograms: expAfter.HistogramCount(),
			Deltas:     metricsDeltas(expBefore, expAfter),
			Snapshot:   snapPath,
		}
	}
	return res, nil
}

// windowP99MS prefers the measured window's exact p99 for a stage,
// falling back to the since-boot quantile (in ns) when the window saw no
// observations for it.
func windowP99MS(waits map[string]stageWindow, stage string, sinceBootNS float64) float64 {
	if w, ok := waits[stage]; ok && w.Count > 0 {
		return w.P99MS
	}
	return sinceBootNS / 1e6
}

func prerenderWrites(cfg loadConfig, vertices, featDim int) [][]byte {
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	const variants = 64
	bodies := make([][]byte, 0, variants)
	for b := 0; b < variants; b++ {
		updates := make([]map[string]any, cfg.WriteBatch)
		for i := range updates {
			features := make([]float64, featDim)
			for j := range features {
				features[j] = rng.NormFloat64()
			}
			updates[i] = map[string]any{
				"kind":     "feature-update",
				"u":        rng.Intn(vertices),
				"features": features,
			}
		}
		body, _ := json.Marshal(map[string]any{"updates": updates})
		bodies = append(bodies, body)
	}
	return bodies
}

func summarize(ws []*worker, d time.Duration) latencySummary {
	var all []int64
	var s latencySummary
	for _, w := range ws {
		all = append(all, w.lat...)
		s.Ops += w.ops
	}
	s.QPS = float64(s.Ops) / d.Seconds()
	if len(all) == 0 {
		return s
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) float64 {
		i := int(p * float64(len(all)))
		if i >= len(all) {
			i = len(all) - 1
		}
		return float64(all[i]) / 1e6
	}
	s.P50MS, s.P99MS, s.P999 = q(0.50), q(0.99), q(0.999)
	s.MaxMS = float64(all[len(all)-1]) / 1e6
	return s
}
