// The -measure-recovery mode: the restart-cost benchmark behind
// BENCH_recovery.json. Three measurements, one document:
//
//  1. An in-process checkpoint codec bench — the same engine state
//     encoded and decoded through the serial v1 codec and the sectioned
//     shard-parallel v2 codec, timed best-of-3. This isolates the
//     checkpoint half of restart cost from daemon noise.
//  2. A crash drill per write path — boot a durable rippleserve, admit
//     writes with a mid-stream checkpoint, SIGKILL it, reboot on the
//     same directory, and read the server-side recovery gauge (seconds,
//     replayed batches/s, checkpoint load included) off /stats. Run
//     once with the whole serial baseline (-pipeline-depth=-1: v1
//     codec + serial replay) and once with the default pipelined path;
//     the ratio is the restart-cost speedup a gate can assert on.
//  3. A delta-cadence run — manual checkpoints under
//     -full-checkpoint-every 4 with a localized write stream, reporting
//     full vs delta checkpoint bytes from /stats: the steady-state
//     checkpoint-bytes reduction incremental checkpoints buy.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"time"

	"ripple"
	ds "ripple/internal/dataset"
)

// recoveryReport is the BENCH_recovery.json document.
type recoveryReport struct {
	GOMAXPROCS int             `json:"gomaxprocs"`
	Dataset    string          `json:"dataset"`
	Scale      float64         `json:"scale"`
	Writes     int             `json:"writes_per_phase"`
	Codec      codecBench      `json:"checkpoint_codec"`
	Phases     []recoveryPhase `json:"phases"`
	// RecoverySpeedup is serial recovery seconds over pipelined recovery
	// seconds for the same workload: >1 means restarts got faster.
	RecoverySpeedup   float64    `json:"recovery_speedup_pipelined_vs_serial"`
	ReplayRateSpeedup float64    `json:"replay_rate_speedup_pipelined_vs_serial"`
	DeltaCheckpoint   deltaBench `json:"delta_checkpoint"`
}

// codecBench compares the v1 serial and v2 sectioned checkpoint codecs
// on identical engine state, in-process.
type codecBench struct {
	Vertices          int     `json:"vertices"`
	Edges             int     `json:"edges"`
	SerialBytes       int     `json:"serial_bytes"`
	SectionedBytes    int     `json:"sectioned_bytes"`
	SerialEncodeMS    float64 `json:"serial_encode_ms"`
	SectionedEncodeMS float64 `json:"sectioned_encode_ms"`
	SerialDecodeMS    float64 `json:"serial_decode_ms"`
	SectionedDecodeMS float64 `json:"sectioned_decode_ms"`
	EncodeSpeedup     float64 `json:"encode_speedup"`
	DecodeSpeedup     float64 `json:"decode_speedup"`
}

// recoveryPhase is one crash drill: load, kill, reboot, measure.
type recoveryPhase struct {
	Name          string  `json:"name"`
	PipelineDepth int     `json:"pipeline_depth"`
	WritesPerS    float64 `json:"load_writes_per_s"`
	// Server-side recovery gauge: begins at serve.Open entry (checkpoint
	// load included), ends when the WAL tail is fully replayed.
	RecoveredBatches int64   `json:"recovered_batches"`
	RecoverySeconds  float64 `json:"recovery_seconds"`
	ReplayRate       float64 `json:"replayed_batches_per_s"`
	// Client-side kill→healthy wall clock; includes dataset regeneration
	// and bootstrap, which recovery optimisations cannot touch.
	BootSeconds float64 `json:"boot_seconds"`
}

// deltaBench reports the checkpoint-bytes effect of incremental
// checkpoints under a localized write stream.
type deltaBench struct {
	FullCheckpoints  int64   `json:"full_checkpoints"`
	DeltaCheckpoints int64   `json:"delta_checkpoints"`
	LastFullBytes    int64   `json:"last_full_checkpoint_bytes"`
	LastDeltaBytes   int64   `json:"last_delta_checkpoint_bytes"`
	// DeltaBytesRatio is delta/full: the steady-state fraction of a full
	// checkpoint a delta costs. <1 means incremental checkpoints shrink
	// steady-state checkpoint IO.
	DeltaBytesRatio float64 `json:"delta_bytes_ratio"`
}

// recoveryConfig carries the -measure-recovery knobs.
type recoveryConfig struct {
	Dataset    string
	Scale      float64 // crash-drill daemon scale
	CodecScale float64 // in-process codec bench scale
	Writes     int     // sync writes per drill
	Tail       int     // writes after the mid-stream checkpoint = WAL tail recovery replays
	Seed       int64

	MinRecoverySpeedup float64 // 0 = report only
	MinCkptSpeedup     float64 // 0 = report only
}

func runRecovery(cfg recoveryConfig, serveBin, out string) error {
	rep := recoveryReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Dataset:    cfg.Dataset, Scale: cfg.Scale, Writes: cfg.Writes,
	}

	fmt.Fprintf(os.Stderr, "rippleload: codec bench (%s scale %v)...\n", cfg.Dataset, cfg.CodecScale)
	codec, err := benchCodec(cfg)
	if err != nil {
		return fmt.Errorf("codec bench: %w", err)
	}
	rep.Codec = *codec

	for _, ph := range []struct {
		name  string
		depth int
	}{
		{"serial", -1},
		{"pipelined", 0},
	} {
		fmt.Fprintf(os.Stderr, "rippleload: crash drill (%s)...\n", ph.name)
		res, err := runCrashDrill(cfg, serveBin, ph.name, ph.depth)
		if err != nil {
			return fmt.Errorf("crash drill %s: %w", ph.name, err)
		}
		rep.Phases = append(rep.Phases, *res)
	}
	serial, pipelined := rep.Phases[0], rep.Phases[1]
	if pipelined.RecoverySeconds > 0 {
		rep.RecoverySpeedup = serial.RecoverySeconds / pipelined.RecoverySeconds
	}
	if serial.ReplayRate > 0 {
		rep.ReplayRateSpeedup = pipelined.ReplayRate / serial.ReplayRate
	}

	fmt.Fprintln(os.Stderr, "rippleload: delta checkpoint cadence...")
	deltas, err := runDeltaCadence(cfg, serveBin)
	if err != nil {
		return fmt.Errorf("delta cadence: %w", err)
	}
	rep.DeltaCheckpoint = *deltas

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	} else {
		fmt.Printf("wrote %s\n", out)
	}
	fmt.Printf("  codec: encode %.2fx, decode %.2fx (serial %.1fms -> sectioned %.1fms over %d vertices, GOMAXPROCS=%d)\n",
		rep.Codec.EncodeSpeedup, rep.Codec.DecodeSpeedup,
		rep.Codec.SerialDecodeMS, rep.Codec.SectionedDecodeMS, rep.Codec.Vertices, rep.GOMAXPROCS)
	for _, ph := range rep.Phases {
		fmt.Printf("  %-10s recovered %d batches in %.3fs (%.0f/s; boot %.2fs)\n",
			ph.Name, ph.RecoveredBatches, ph.RecoverySeconds, ph.ReplayRate, ph.BootSeconds)
	}
	fmt.Printf("  recovery speedup: %.2fx (replay rate %.2fx)\n", rep.RecoverySpeedup, rep.ReplayRateSpeedup)
	fmt.Printf("  delta checkpoints: %d full / %d delta, delta costs %.2fx of a full (%d vs %d bytes)\n",
		rep.DeltaCheckpoint.FullCheckpoints, rep.DeltaCheckpoint.DeltaCheckpoints,
		rep.DeltaCheckpoint.DeltaBytesRatio, rep.DeltaCheckpoint.LastDeltaBytes, rep.DeltaCheckpoint.LastFullBytes)

	// Gates last, after the report is on disk: a failing gate still
	// leaves the measured numbers for the build log to point at.
	if cfg.MinCkptSpeedup > 0 && rep.Codec.DecodeSpeedup < cfg.MinCkptSpeedup {
		return fmt.Errorf("checkpoint load speedup %.2fx below gate %.2fx (serial %.1fms, sectioned %.1fms)",
			rep.Codec.DecodeSpeedup, cfg.MinCkptSpeedup, rep.Codec.SerialDecodeMS, rep.Codec.SectionedDecodeMS)
	}
	if cfg.MinRecoverySpeedup > 0 && rep.RecoverySpeedup < cfg.MinRecoverySpeedup {
		return fmt.Errorf("recovery speedup %.2fx below gate %.2fx (serial %.3fs, pipelined %.3fs)",
			rep.RecoverySpeedup, cfg.MinRecoverySpeedup, serial.RecoverySeconds, pipelined.RecoverySeconds)
	}
	return nil
}

// benchCodec times encode/decode of identical engine state through both
// checkpoint codecs, best of 3.
func benchCodec(cfg recoveryConfig) (*codecBench, error) {
	spec, err := ds.ByName(cfg.Dataset, cfg.CodecScale)
	if err != nil {
		return nil, err
	}
	spec.Seed = cfg.Seed
	g, features, err := ds.Generate(spec)
	if err != nil {
		return nil, err
	}
	// A serving-shaped model (wide hidden layer): most checkpoint bytes are
	// embedding rows, which is where the two codecs differ.
	model, err := ripple.NewModel("GS-S", []int{spec.FeatureDim, 128, spec.NumClasses}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	eng, err := ripple.Bootstrap(g, model, features)
	if err != nil {
		return nil, err
	}

	// Best-of-3 with an untimed warmup (sizes the reused buffers) and a GC
	// fence before each timed run: a collection triggered mid-iteration by
	// the ~20MB working set would otherwise bill GC pause to the codec.
	bench := func(f func() error) (float64, error) {
		if err := f(); err != nil {
			return 0, err
		}
		best := -1.0
		for i := 0; i < 3; i++ {
			runtime.GC()
			start := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			if ms := float64(time.Since(start).Nanoseconds()) / 1e6; best < 0 || ms < best {
				best = ms
			}
		}
		return best, nil
	}

	res := &codecBench{Vertices: spec.NumVertices, Edges: int(spec.NumEdges())}
	var serial, sectioned bytes.Buffer
	if res.SerialEncodeMS, err = bench(func() error {
		serial.Reset()
		return eng.SaveSerial(&serial)
	}); err != nil {
		return nil, err
	}
	if res.SectionedEncodeMS, err = bench(func() error {
		sectioned.Reset()
		return eng.Save(&sectioned)
	}); err != nil {
		return nil, err
	}
	res.SerialBytes, res.SectionedBytes = serial.Len(), sectioned.Len()
	if res.SerialDecodeMS, err = bench(func() error {
		_, err := ripple.LoadEngine(bytes.NewReader(serial.Bytes()), model)
		return err
	}); err != nil {
		return nil, err
	}
	if res.SectionedDecodeMS, err = bench(func() error {
		_, err := ripple.LoadEngine(bytes.NewReader(sectioned.Bytes()), model)
		return err
	}); err != nil {
		return nil, err
	}
	if res.SectionedEncodeMS > 0 {
		res.EncodeSpeedup = res.SerialEncodeMS / res.SectionedEncodeMS
	}
	if res.SectionedDecodeMS > 0 {
		res.DecodeSpeedup = res.SerialDecodeMS / res.SectionedDecodeMS
	}
	return res, nil
}

// recoveryDaemon spawns a durable rippleserve on a fresh port over dir.
type recoveryDaemon struct {
	cmd  *exec.Cmd
	base string
}

func spawnRecoveryDaemon(cfg recoveryConfig, serveBin, dir string, depth int, extra ...string) (*recoveryDaemon, error) {
	port, err := freePort()
	if err != nil {
		return nil, err
	}
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	args := append([]string{
		"-addr", addr,
		"-dataset", cfg.Dataset,
		"-scale", fmt.Sprint(cfg.Scale),
		"-data-dir", dir,
		"-checkpoint-every", "0", // manual checkpoints only: the drill controls the WAL tail
		"-pipeline-depth", fmt.Sprint(depth),
	}, extra...)
	cmd := exec.Command(serveBin, args...)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &recoveryDaemon{cmd: cmd, base: "http://" + addr}, nil
}

func (d *recoveryDaemon) kill() {
	d.cmd.Process.Kill()
	d.cmd.Wait()
}

func (d *recoveryDaemon) stats() (map[string]any, error) {
	resp, err := http.Get(d.base + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/stats: %d: %v", resp.StatusCode, body)
	}
	return body, nil
}

func (d *recoveryDaemon) post(path string, body []byte) error {
	resp, err := http.Post(d.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: status %d", path, resp.StatusCode)
	}
	return nil
}

// featureBody renders one single-update sync write body for vertex v.
func featureBody(v, featDim int, rng *rand.Rand) []byte {
	features := make([]float64, featDim)
	for j := range features {
		features[j] = rng.NormFloat64()
	}
	body, _ := json.Marshal(map[string]any{
		"updates": []map[string]any{{"kind": "feature-update", "u": v, "features": features}},
	})
	return body
}

// runCrashDrill is measurement 2: load, checkpoint mid-stream, SIGKILL,
// reboot, read the recovery gauge.
func runCrashDrill(cfg recoveryConfig, serveBin, name string, depth int) (*recoveryPhase, error) {
	dir, err := os.MkdirTemp("", "rippleload-recovery-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	d, err := spawnRecoveryDaemon(cfg, serveBin, dir, depth)
	if err != nil {
		return nil, err
	}
	defer d.kill()
	if err := waitHealthy(d.base, 120*time.Second); err != nil {
		return nil, err
	}
	client := &http.Client{}
	vertices, featDim, _, err := serverFacts(client, d.base)
	if err != nil {
		return nil, err
	}

	// Load: cfg.Writes sync single-update batches, each one a WAL record,
	// with one checkpoint cut mid-stream so recovery exercises BOTH halves
	// of the restart critical path — checkpoint load and WAL-tail replay.
	rng := rand.New(rand.NewSource(cfg.Seed))
	ckptAt := cfg.Writes - cfg.Tail - 1
	if ckptAt < 0 {
		return nil, fmt.Errorf("-recovery-tail %d leaves no room in %d writes", cfg.Tail, cfg.Writes)
	}
	loadStart := time.Now()
	for i := 0; i < cfg.Writes; i++ {
		if err := d.post("/update?sync=1", featureBody(rng.Intn(vertices), featDim, rng)); err != nil {
			return nil, fmt.Errorf("write %d: %w", i, err)
		}
		if i == ckptAt {
			if err := d.post("/checkpoint", nil); err != nil {
				return nil, err
			}
		}
	}
	res := &recoveryPhase{Name: name, PipelineDepth: depth,
		WritesPerS: float64(cfg.Writes) / time.Since(loadStart).Seconds()}

	// Crash: SIGKILL, no drain, no final checkpoint — the WAL tail since
	// the mid-stream checkpoint is what the reboot must replay. A killed
	// reboot leaves the directory untouched (no checkpoint was cut), so
	// the same drill reruns bit-identically; best-of-3 reboots filters
	// scheduler noise out of a sub-100ms measurement.
	d.kill()
	for attempt := 0; attempt < 3; attempt++ {
		bootStart := time.Now()
		d2, err := spawnRecoveryDaemon(cfg, serveBin, dir, depth)
		if err != nil {
			return nil, err
		}
		if err := waitHealthy(d2.base, 120*time.Second); err != nil {
			d2.kill()
			return nil, err
		}
		boot := time.Since(bootStart).Seconds()
		st, err := d2.stats()
		d2.kill()
		if err != nil {
			return nil, err
		}
		rec, _ := st["recovery"].(map[string]any)
		if rec == nil {
			return nil, fmt.Errorf("/stats has no recovery gauge after a crash reboot: %v", st)
		}
		if got := statI64(rec, "recovered_batches"); got != int64(cfg.Tail) {
			return nil, fmt.Errorf("recovered %d batches, expected the %d-batch WAL tail", got, cfg.Tail)
		}
		if secs := statF64(rec, "seconds"); attempt == 0 || secs < res.RecoverySeconds {
			res.RecoveredBatches = statI64(rec, "recovered_batches")
			res.RecoverySeconds = secs
			res.ReplayRate = statF64(rec, "replay_rate")
			res.BootSeconds = boot
		}
	}
	return res, nil
}

// runDeltaCadence is measurement 3: manual checkpoints every 16 writes
// under -full-checkpoint-every 4 with a localized write stream (all
// updates hit one vertex), then read the byte accounting.
func runDeltaCadence(cfg recoveryConfig, serveBin string) (*deltaBench, error) {
	dir, err := os.MkdirTemp("", "rippleload-delta-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	d, err := spawnRecoveryDaemon(cfg, serveBin, dir, 0, "-full-checkpoint-every", "4")
	if err != nil {
		return nil, err
	}
	defer d.kill()
	if err := waitHealthy(d.base, 120*time.Second); err != nil {
		return nil, err
	}
	client := &http.Client{}
	_, featDim, _, err := serverFacts(client, d.base)
	if err != nil {
		return nil, err
	}

	// 8 checkpoints: the 4-cadence cuts full, delta, delta, delta, full,
	// delta, delta, delta — both kinds' byte counters end populated.
	rng := rand.New(rand.NewSource(cfg.Seed + 31))
	for ckpt := 0; ckpt < 8; ckpt++ {
		for i := 0; i < 16; i++ {
			if err := d.post("/update?sync=1", featureBody(1, featDim, rng)); err != nil {
				return nil, err
			}
		}
		if err := d.post("/checkpoint", nil); err != nil {
			return nil, err
		}
	}
	st, err := d.stats()
	if err != nil {
		return nil, err
	}
	serving, _ := st["serving"].(map[string]any)
	if serving == nil {
		return nil, fmt.Errorf("/stats missing serving: %v", st)
	}
	res := &deltaBench{
		FullCheckpoints:  statI64(serving, "full_checkpoints"),
		DeltaCheckpoints: statI64(serving, "delta_checkpoints"),
		LastFullBytes:    statI64(serving, "last_full_checkpoint_bytes"),
		LastDeltaBytes:   statI64(serving, "last_delta_checkpoint_bytes"),
	}
	if res.LastFullBytes > 0 {
		res.DeltaBytesRatio = float64(res.LastDeltaBytes) / float64(res.LastFullBytes)
	}
	if res.DeltaCheckpoints == 0 || res.FullCheckpoints == 0 {
		return nil, fmt.Errorf("delta cadence cut %d full / %d delta checkpoints; expected both kinds", res.FullCheckpoints, res.DeltaCheckpoints)
	}
	return res, nil
}
