package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"

	"ripple/internal/obs"
)

// /metrics scraping (-scrape-metrics): rippleload doubles as the conformance
// client for the server's Prometheus exposition. Around each measured phase
// it scrapes /metrics, lints the exposition, asserts the scraped counters
// agree with the /stats JSON it already differences (a divergence means the
// metrics adapter drifted from the stats structs — exactly the bug a
// dashboard would silently absorb), folds the counter deltas into the phase
// report, and saves one mid-run snapshot as the CI artifact.

// stageWindow summarises one pipeline stage over the measured window:
// exact counts from differencing the /stats power-of-two bucket vectors,
// so the quantiles describe this window, not the daemon's whole life.
type stageWindow struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
}

func windowOf(d obs.HistSnapshot) stageWindow {
	return stageWindow{
		Count:  d.Count,
		MeanMS: d.Mean() / 1e6,
		P50MS:  float64(d.Quantile(0.50)) / 1e6,
		P99MS:  float64(d.Quantile(0.99)) / 1e6,
		P999MS: float64(d.Quantile(0.999)) / 1e6,
	}
}

// histDelta extracts the named HistSnapshot from two /stats serving maps
// and returns after−before. Missing keys difference as empty snapshots.
func histDelta(before, after map[string]any, key string) obs.HistSnapshot {
	return histFromStat(after, key).Sub(histFromStat(before, key))
}

func histFromStat(m map[string]any, key string) obs.HistSnapshot {
	var s obs.HistSnapshot
	raw, ok := m[key]
	if !ok {
		return s
	}
	b, err := json.Marshal(raw)
	if err != nil {
		return s
	}
	json.Unmarshal(b, &s)
	return s
}

// stageWaits builds the per-stage window breakdown from the /stats
// snapshots taken at the edges of the measured window.
func stageWaits(before, after map[string]any) map[string]stageWindow {
	out := make(map[string]stageWindow, 4)
	for _, key := range []string{"queue_wait_hist", "fsync_wait_hist", "apply_hist", "batch_total_hist"} {
		d := histDelta(before, after, key)
		if d.Count == 0 {
			continue
		}
		out[strings.TrimSuffix(key, "_hist")] = windowOf(d)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// metricsScrape is the /metrics section of a phase result: exposition
// shape plus counter deltas over the measured window.
type metricsScrape struct {
	Series     int                `json:"series"`
	Histograms int                `json:"histograms"`
	Deltas     map[string]float64 `json:"deltas"`
	Snapshot   string             `json:"snapshot,omitempty"` // mid-run artifact path
}

// fetchMetrics scrapes base/metrics and lint-parses the exposition.
func fetchMetrics(client *http.Client, base string) (*obs.Exposition, []byte, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("GET /metrics: status %d: %s", resp.StatusCode, raw)
	}
	exp, err := obs.LintExposition(raw)
	if err != nil {
		return nil, nil, fmt.Errorf("/metrics exposition: %w", err)
	}
	return exp, raw, nil
}

// metricsParity cross-checks the scraped counters against the /stats JSON
// read in the same quiesced moment. Both views are snapshots of the same
// Stats() call chain, so after load has stopped they must agree exactly.
func metricsParity(exp *obs.Exposition, stats map[string]any) error {
	for metric, statKey := range map[string]string{
		"ripple_batches_total":         "batches",
		"ripple_updates_applied_total": "updates_applied",
		"ripple_wal_appends_total":     "wal_appends",
		"ripple_wal_fsyncs_total":      "wal_fsyncs",
		"ripple_epoch":                 "epoch",
	} {
		got, ok := exp.Value(metric)
		if !ok {
			return fmt.Errorf("metrics parity: %s missing from /metrics", metric)
		}
		if want := statF64(stats, statKey); got != want {
			return fmt.Errorf("metrics parity: %s = %v but /stats %s = %v", metric, got, statKey, want)
		}
	}
	return nil
}

// metricsDeltas folds the window's counter movement into the report.
func metricsDeltas(before, after *obs.Exposition) map[string]float64 {
	out := make(map[string]float64)
	for _, name := range []string{
		"ripple_batches_total",
		"ripple_updates_applied_total",
		"ripple_label_flips_total",
		"ripple_wal_appends_total",
		"ripple_wal_fsyncs_total",
		"ripple_snapshot_reads_total",
		"ripple_traces_recorded_total",
	} {
		a, okA := after.Value(name)
		b, okB := before.Value(name)
		if okA && okB && a >= b {
			out[name] = a - b
		}
	}
	return out
}

// snapshotPath derives a per-phase artifact path from the -metrics-out
// base so -compare-serial phases do not clobber each other:
// METRICS_snapshot.prom + "pipelined" → METRICS_snapshot.pipelined.prom.
func snapshotPath(base, phase string) string {
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "." + phase + ext
}
