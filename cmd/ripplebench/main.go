// Command ripplebench regenerates the paper's tables and figures over the
// synthetic dataset substitutes.
//
// Usage:
//
//	ripplebench -exp fig9                 # one experiment
//	ripplebench -exp all -scale 0.5      # everything, smaller graphs
//	ripplebench -exp fig9 -summary       # adds the §7.3 headline ratios
//
// Experiments: table3, fig2a, fig2b, fig8, fig9, fig10, fig11, fig12a,
// fig12b, fig12c, fig13a, fig13b, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ripple/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table3, fig2a, fig2b, fig8, fig9, fig10, fig11, fig12a, fig12b, fig12c, fig13a, fig13b, all)")
	scale := flag.Float64("scale", 1, "multiplier on default dataset scales")
	stream := flag.Int("stream", 0, "updates per dataset stream (default 3000)")
	batches := flag.Int("batches", 0, "max batches per experiment cell (default 20)")
	hidden := flag.Int("hidden", 0, "hidden layer width (default 64)")
	seed := flag.Int64("seed", 0, "seed for models and streams (default 42)")
	summary := flag.Bool("summary", false, "print §7.3 headline ratios after fig9/fig10")
	cellsOut := flag.Bool("cells", false, "print the raw cell table after each experiment")
	flag.Parse()

	h := bench.New(bench.Config{
		Scale:      *scale,
		StreamLen:  *stream,
		MaxBatches: *batches,
		Hidden:     *hidden,
		Seed:       *seed,
	})

	runners := map[string]func(io.Writer) ([]bench.Cell, error){
		"table3":   h.Table3,
		"fig2a":    h.Fig2a,
		"fig2b":    h.Fig2b,
		"fig8":     h.Fig8,
		"fig9":     h.Fig9,
		"fig10":    h.Fig10,
		"fig11":    h.Fig11,
		"fig12a":   h.Fig12a,
		"fig12b":   h.Fig12b,
		"fig12c":   h.Fig12c,
		"fig13a":   h.Fig13a,
		"fig13b":   h.Fig13b,
		"ablation": h.Ablations,
	}
	order := []string{"table3", "fig2a", "fig2b", "fig8", "fig9", "fig10", "fig11", "fig12a", "fig12b", "fig12c", "fig13a", "fig13b", "ablation"}

	var ids []string
	if *exp == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*exp, ",") {
			if _, ok := runners[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (want one of %s, all)\n", id, strings.Join(order, ", "))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	for _, id := range ids {
		start := time.Now()
		cells, err := runners[id](os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		if *cellsOut {
			bench.WriteCells(os.Stdout, cells)
			fmt.Println()
		}
		if *summary && (id == "fig9" || id == "fig10") {
			bench.Summary(os.Stdout, cells)
			fmt.Println()
		}
	}
}
