package ripple_test

import (
	"math/rand"
	"testing"

	"ripple"
)

func buildSmall(t *testing.T) (*ripple.Graph, []ripple.Vector) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	g := ripple.NewGraph(30)
	for i := 0; i < 120; i++ {
		u := ripple.VertexID(rng.Intn(30))
		v := ripple.VertexID(rng.Intn(30))
		_ = g.AddEdge(u, v, 1)
	}
	x := make([]ripple.Vector, 30)
	for i := range x {
		x[i] = ripple.NewVector(8)
		for j := range x[i] {
			x[i][j] = rng.Float32()
		}
	}
	return g, x
}

func TestPublicQuickstartFlow(t *testing.T) {
	g, x := buildSmall(t)
	model, err := ripple.NewModel("GS-S", []int{8, 16, 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ripple.Bootstrap(g, model, x)
	if err != nil {
		t.Fatal(err)
	}
	before := eng.Label(3)
	_ = before
	res, err := eng.ApplyBatch([]ripple.Update{
		{Kind: ripple.EdgeAdd, U: 2, V: 3, Weight: 1},
		{Kind: ripple.FeatureUpdate, U: 2, Features: ripple.NewVector(8)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected == 0 {
		t.Error("updates should affect at least one vertex")
	}
	if l := eng.Label(3); l < 0 || l >= 5 {
		t.Errorf("label %d out of class range", l)
	}
}

func TestPublicModelValidation(t *testing.T) {
	if _, err := ripple.NewModel("nope", []int{4, 2}, 1); err == nil {
		t.Error("expected error for unknown workload")
	}
	for _, w := range ripple.Workloads {
		if _, err := ripple.NewModel(w, []int{4, 4, 2}, 1); err != nil {
			t.Errorf("NewModel(%s): %v", w, err)
		}
	}
}

func TestPublicDistributedFlow(t *testing.T) {
	g, x := buildSmall(t)
	model, err := ripple.NewModel("GC-S", []int{8, 16, 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Mirror for ground truth.
	g2, _ := buildSmall(t)
	truthModelEng, err := ripple.Bootstrap(g2, model, x)
	if err != nil {
		t.Fatal(err)
	}

	cl, err := ripple.BootstrapDistributed(g, model, x, ripple.DistOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	batch := []ripple.Update{
		{Kind: ripple.EdgeAdd, U: 1, V: 2, Weight: 1},
		{Kind: ripple.EdgeAdd, U: 5, V: 9, Weight: 1},
	}
	// Deduplicate against bootstrap topology.
	valid := batch[:0]
	for _, u := range batch {
		if !g2.HasEdge(u.U, u.V) {
			valid = append(valid, u)
		}
	}
	if len(valid) == 0 {
		t.Skip("random graph already contains test edges")
	}
	res, err := cl.ApplyBatch(valid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected == 0 {
		t.Error("distributed batch affected nothing")
	}
	if _, err := truthModelEng.ApplyBatch(valid); err != nil {
		t.Fatal(err)
	}
	if d := cl.GatherEmbeddings().MaxAbsDiff(truthModelEng.Embeddings()); d > 5e-3 {
		t.Errorf("distributed differs from single-machine by %v", d)
	}
}

func TestPublicDistributedValidation(t *testing.T) {
	g, x := buildSmall(t)
	model, err := ripple.NewModel("GC-S", []int{8, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ripple.BootstrapDistributed(g, model, x, ripple.DistOptions{Workers: 0}); err == nil {
		t.Error("expected error for zero workers")
	}
	if _, err := ripple.BootstrapDistributed(g, model, x, ripple.DistOptions{Workers: 2, Partitioner: "bogus"}); err == nil {
		t.Error("expected error for unknown partitioner")
	}
}
