// Package ripple is a streaming GNN inference framework: it maintains
// exact GNN predictions over large graphs that receive continuous edge
// additions/deletions and vertex feature updates, using incremental
// (delta-message) propagation instead of neighbourhood recomputation.
//
// It is a from-scratch Go reproduction of "Ripple: Scalable Incremental
// GNN Inferencing on Large Streaming Graphs" (Naman & Simmhan, ICDCS
// 2025). See DESIGN.md for the system inventory, the reproduction
// substitutions, and the paper-vs-measured evaluation notes.
//
// # Quick start
//
//	g := ripple.NewGraph(numVertices)
//	g.AddEdge(0, 1, 1.0) // bootstrap topology
//
//	model, _ := ripple.NewModel("GS-S", []int{featDim, 64, numClasses}, seed)
//	eng, _ := ripple.Bootstrap(g, model, features) // offline forward pass
//
//	eng.ApplyBatch([]ripple.Update{
//		{Kind: ripple.EdgeAdd, U: 3, V: 7, Weight: 1},
//	})
//	label := eng.Label(7) // fresh prediction, incrementally maintained
//
// Models: GraphConv, GraphSAGE and GINConv over the linear aggregators
// sum, mean and weighted sum — the paper's five workloads GC-S, GS-S,
// GC-M, GI-S and GC-W. For graphs beyond one machine's memory, see
// BootstrapDistributed.
package ripple

import (
	"io"
	"log/slog"
	"time"

	"ripple/internal/engine"
	"ripple/internal/gnn"
	"ripple/internal/graph"
	"ripple/internal/obs"
	"ripple/internal/serve"
	"ripple/internal/tensor"
)

// Observability surface, re-exported from internal/obs. A Server or
// Follower exposes a Prometheus-text MetricsRegistry (serve it at
// /metrics) and, on the server, a flight recorder of recent batch traces
// (Server.Traces; rippleserve serves them at /debug/traces).
type (
	// BatchTrace is one admitted batch's stage-by-stage pipeline timeline,
	// captured by the flight recorder (see WithTraceRing, Server.Traces).
	BatchTrace = obs.BatchTrace
	// MetricsRegistry renders Prometheus text-format metrics; it is an
	// http.Handler, returned by Server.MetricsRegistry and
	// Follower.MetricsRegistry.
	MetricsRegistry = obs.Registry
	// HistSnapshot is a power-of-two-bucket latency histogram snapshot,
	// embedded in ServeStats and FollowerStats.
	HistSnapshot = obs.HistSnapshot
)

// NewLogger builds a leveled slog.Logger for WithLogger/FollowWithLogger.
// level is one of debug, info, warn, error; format is text or json.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	return obs.NewLogger(w, level, format)
}

// Core type surface, re-exported from the implementation packages.
type (
	// Graph is a directed graph over a fixed vertex set with dynamic,
	// weighted edges.
	Graph = graph.Graph
	// VertexID identifies a vertex in [0, NumVertices).
	VertexID = graph.VertexID
	// Vector is a dense float32 vector (features, embeddings, logits).
	Vector = tensor.Vector
	// Update is one streaming graph update.
	Update = engine.Update
	// UpdateKind discriminates edge add/delete and feature updates.
	UpdateKind = engine.UpdateKind
	// BatchResult reports the cost and reach of one applied batch.
	BatchResult = engine.BatchResult
	// Model is an L-layer GNN for vertex classification.
	Model = gnn.Model
	// Embeddings is the per-vertex state of layer-wise inference.
	Embeddings = gnn.Embeddings
	// Engine incrementally maintains embeddings under streaming updates
	// (the paper's single-machine Ripple engine).
	Engine = engine.Ripple
	// LabelChange is one vertex whose predicted class flipped in a batch
	// (trigger-based serving; enable with WithLabelTracking).
	LabelChange = engine.LabelChange
	// Batcher turns a continuous update stream into size- or
	// deadline-triggered batches (see NewBatcher).
	Batcher = engine.Batcher
)

// Update kinds.
const (
	// EdgeAdd inserts directed edge U→V with Weight.
	EdgeAdd = engine.EdgeAdd
	// EdgeDelete removes directed edge U→V.
	EdgeDelete = engine.EdgeDelete
	// FeatureUpdate replaces vertex U's features.
	FeatureUpdate = engine.FeatureUpdate
)

// Workloads lists the supported model/aggregator pairings: GC-S
// (GraphConv+sum), GS-S (GraphSAGE+sum), GC-M (GraphConv+mean), GI-S
// (GINConv+sum), GC-W (GraphConv+weighted sum).
var Workloads = gnn.WorkloadNames

// NewGraph returns an empty directed graph over n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewVector returns a zeroed feature vector of width d.
func NewVector(d int) Vector { return tensor.NewVector(d) }

// NewModel builds one of the named workload models with deterministic
// seeded weights. dims is [featureDim, hidden..., numClasses]; the model
// has len(dims)-1 layers.
func NewModel(workload string, dims []int, seed int64) (*Model, error) {
	return gnn.NewWorkload(workload, dims, seed)
}

// Infer runs the offline layer-wise forward pass over the whole graph,
// producing the embedding state streaming updates are applied to
// (and, at the final layer, every vertex's class logits).
func Infer(g *Graph, model *Model, features []Vector) (*Embeddings, error) {
	return gnn.Forward(g, model, features)
}

// Option customises engine construction in Bootstrap.
type Option func(*engine.Config)

// WithLabelTracking records per-batch label flips in
// BatchResult.LabelChanges — the paper's trigger-based serving model:
// consumers learn about changed predictions without polling.
func WithLabelTracking() Option {
	return func(c *engine.Config) { c.TrackLabels = true }
}

// WithZeroDeltaPruning drops vertices whose embedding was exactly
// unchanged from further propagation. The paper's Ripple does not prune
// (results remain exact either way); this is the ablation switch.
func WithZeroDeltaPruning() Option {
	return func(c *engine.Config) { c.PruneZeroDeltas = true }
}

// WithShards sets the engine's mailbox shard count for the parallel
// scatter phase (rounded up to a power of two; the default is the
// smallest power of two covering GOMAXPROCS, with a floor of 8 — see
// engine.Config.Shards). More shards balance the
// scatter merge better on skewed frontiers at the cost of per-worker log
// bookkeeping. Sharding never changes results: messages merge in a
// deterministic order, bit-identical to the serial engine.
func WithShards(n int) Option {
	return func(c *engine.Config) { c.Shards = n }
}

// WithSerialCheckpoint makes Engine.Save write the serial (v1)
// checkpoint encoding instead of the shard-parallel sectioned format —
// the measurable baseline sectioned checkpoints are benchmarked
// against. Either format loads into bit-identical state.
func WithSerialCheckpoint() Option {
	return func(c *engine.Config) { c.SerialCheckpoint = true }
}

// WithSerial disables the engine's parallel scatter and apply phases —
// every batch runs single-threaded. Mostly for benchmarks isolating
// single-core behaviour; results are bit-identical to the parallel
// default.
func WithSerial() Option {
	return func(c *engine.Config) { c.Serial = true }
}

// Bootstrap runs Infer and wraps the result in an incremental Engine. The
// engine takes ownership of g; do not mutate it directly afterwards —
// stream updates through ApplyBatch (and AddVertex/RemoveVertex) instead.
func Bootstrap(g *Graph, model *Model, features []Vector, opts ...Option) (*Engine, error) {
	emb, err := gnn.Forward(g, model, features)
	if err != nil {
		return nil, err
	}
	var cfg engine.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return engine.NewRipple(g, model, emb, cfg)
}

// NewBatcher wraps an engine in a dynamic batcher that flushes when
// maxSize updates have accumulated or the oldest buffered update is
// maxDelay old, whichever comes first (either bound may be disabled with
// a non-positive value, not both). onBatch observes every flush.
func NewBatcher(eng *Engine, maxSize int, maxDelay time.Duration, onBatch func(BatchResult, error)) (*Batcher, error) {
	return engine.NewBatcher(eng, maxSize, maxDelay, onBatch)
}

// LoadEngine restores an engine from a checkpoint written by
// Engine.Save. model must be built from the same spec (workload, dims,
// seed) the checkpoint was taken under.
func LoadEngine(r io.Reader, model *Model, opts ...Option) (*Engine, error) {
	var cfg engine.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return engine.LoadRipple(r, model, cfg)
}

// Concurrent serving layer, re-exported from internal/serve.
type (
	// Server is the snapshot-isolated concurrent serving layer: lock-free
	// Label/Embedding/TopK reads against immutable published epochs while
	// update batches apply, an admission queue coalescing Submit calls,
	// and Subscribe label-change triggers. See Serve.
	Server = serve.Server
	// Snapshot is one immutable published epoch of the serving tables;
	// pin one with Server.Snapshot for repeatable reads.
	Snapshot = serve.Snapshot
	// Ranked is one class/score entry of a TopK result.
	Ranked = serve.Ranked
	// ServeStats is a point-in-time counter snapshot of a Server.
	ServeStats = serve.Stats
	// CommStats are the cumulative distributed-communication counters of
	// a cluster-backed Server (see ServeCluster); zero for a single-node
	// Server.
	CommStats = serve.CommStats
	// ServeBackend is the write-side contract behind a Server: Serve wraps
	// the single-node engine, ServeCluster the distributed cluster. The
	// serving semantics — epochs, snapshot isolation, admission queue,
	// triggers — are identical over any backend.
	ServeBackend = serve.Backend
	// PageStats describes the paged snapshot publisher: page geometry of
	// the current epoch plus cumulative pages copied vs shared across all
	// publishes. Returned by Server.Compact.
	PageStats = serve.PageStats
	// CheckpointStats describes a completed checkpoint of a durable
	// server (see WithDataDir): the epoch it cut, its file size, and the
	// WAL footprint left after truncation. Returned by Server.Checkpoint.
	CheckpointStats = serve.CheckpointStats
	// RecoveryProgress publishes live recovery state while Serve (with
	// WithDataDir) is still rebuilding — see WithRecoveryProgress.
	RecoveryProgress = serve.RecoveryProgress
	// RecoverySnapshot is a point-in-time view of recovery progress
	// returned by RecoveryProgress.Snapshot.
	RecoverySnapshot = serve.RecoverySnapshot
)

// ErrServeBackendFailed is returned by Server write operations after the
// serving backend has failed out from under it (a cluster worker died,
// the transport closed). Writes are refused from then on — distinguishing
// an outage from per-batch validation rejections — while reads keep
// serving the last published epoch. See ServeStats.BackendFailed.
var ErrServeBackendFailed = serve.ErrBackendFailed

// ServeOption customises Serve.
type ServeOption func(*serve.Config)

// WithAdmission tunes the serving admission queue: a buffered batch is
// flushed to the engine when it reaches maxBatch updates or its oldest
// update is maxAge old, whichever comes first.
func WithAdmission(maxBatch int, maxAge time.Duration) ServeOption {
	return func(c *serve.Config) { c.MaxBatch, c.MaxAge = maxBatch, maxAge }
}

// WithBatchObserver registers a callback observing every applied or
// rejected batch (admission-queue flushes and direct Apply calls alike).
// It runs on the write path and must not call back into the Server.
func WithBatchObserver(fn func(BatchResult, error)) ServeOption {
	return func(c *serve.Config) { c.OnBatch = fn }
}

// WithPageRows sets the serving snapshot's page granularity (rounded up
// to a power of two; default 256). Publishing an epoch copies only the
// pages the batch's final frontier touched, so smaller pages copy less
// for scattered frontiers at the cost of a larger page table per epoch.
func WithPageRows(rows int) ServeOption {
	return func(c *serve.Config) { c.PageRows = rows }
}

// WithDataDir makes the server durable: every admitted batch is written
// ahead to a segment WAL under dir before it is applied, and checkpoints
// (periodic via WithCheckpointEvery, on demand via Server.Checkpoint, and
// a final one in Server.Close) persist the full backend state and
// truncate the log. On start, Serve/ServeCluster recover from dir — the
// newest valid checkpoint plus a replay of the WAL tail — and resume at
// the exact pre-crash epoch, with labels, logits and trigger state
// bit-identical to an uninterrupted run; a torn tail record from the
// crash is detected (CRC framing) and discarded, never replayed.
func WithDataDir(dir string) ServeOption {
	return func(c *serve.Config) { c.DataDir = dir }
}

// WithFsync sets the durable server's WAL sync policy: on, every
// admitted batch is fsynced before it is applied (durable against power
// loss); off (the default), batches are durable against process death
// immediately and against power loss from the next checkpoint/rotation —
// recovery stays exact either way, the tradeoff is only how many trailing
// batches a whole-machine crash can shed.
func WithFsync(on bool) ServeOption {
	return func(c *serve.Config) { c.Fsync = on }
}

// WithCheckpointEvery takes an automatic checkpoint after every n applied
// batches, truncating the WAL segments the checkpoint covers — the knob
// bounding both recovery time and steady-state disk (one checkpoint +
// batches since it). 0 (the default) leaves checkpointing to
// Server.Checkpoint calls and the final checkpoint in Close.
func WithCheckpointEvery(n int) ServeOption {
	return func(c *serve.Config) { c.CheckpointEvery = n }
}

// WithFullCheckpointEvery makes every nth checkpoint a full-state write
// and the n-1 between them incremental deltas holding only the rows
// changed since the previous checkpoint, so steady-state checkpoint
// bytes track the update rate instead of the graph size. Recovery loads
// the newest full checkpoint, applies the delta chain, then replays the
// WAL tail; the WAL is only truncated at full checkpoints, so a lost or
// corrupt delta degrades to tail replay, never to data loss. 0 or 1
// (the default) keeps every checkpoint full. Only the single-node
// engine backend supports deltas; ServeCluster ignores the option.
func WithFullCheckpointEvery(n int) ServeOption {
	return func(c *serve.Config) { c.FullCheckpointEvery = n }
}

// WithRecoveryProgress attaches a live progress gauge to recovery:
// while Serve (with WithDataDir) is still loading checkpoints and
// replaying the WAL, p.Snapshot() — safe from any goroutine — reports
// the replayed batch count and replay rate, so a health endpoint can
// answer "recovering, N batches at R/s" before Serve returns.
func WithRecoveryProgress(p *RecoveryProgress) ServeOption {
	return func(c *serve.Config) { c.Recovery = p }
}

// WithPipelineDepth bounds the staged admission pipeline's apply queue:
// how many admitted batches may be in flight — logged and awaiting their
// group-commit fsync or their turn to apply — before admission blocks.
// 0 (the default) uses the built-in depth (8). A negative depth disables
// the pipeline and restores the serial write path (validate, log+fsync,
// apply and publish under one lock), kept as the measurable baseline the
// pipeline is benchmarked against.
func WithPipelineDepth(n int) ServeOption {
	return func(c *serve.Config) { c.PipelineDepth = n }
}

// WithLogger routes the server's structured diagnostics — slow batches,
// WAL/apply failures, checkpoint errors, replication session events —
// through log. nil (the default) discards them. Build one with
// ripple.NewLogger or bring any slog.Logger.
func WithLogger(log *slog.Logger) ServeOption {
	return func(c *serve.Config) { c.Logger = log }
}

// WithTraceRing sizes the batch flight recorder: the server keeps the
// last n admitted batches' stage-by-stage traces (admit, wal_append,
// durable, apply, publish, replicate, fanout) in a lock-free ring read
// by Server.Traces. n is rounded up to a power of two; 0 (the default)
// keeps 1024, negative keeps 1.
func WithTraceRing(n int) ServeOption {
	return func(c *serve.Config) { c.TraceRing = n }
}

// WithSlowBatch logs a structured per-stage timing breakdown (via the
// WithLogger logger) for every batch whose admission-to-publish time
// exceeds d. 0 (the default) disables slow-batch logging.
func WithSlowBatch(d time.Duration) ServeOption {
	return func(c *serve.Config) { c.SlowBatch = d }
}

// WithReplicationLog bounds the in-memory replication log a leader keeps
// once Server.StartReplication is called: the encoded delta frames of the
// most recent n epochs. A reconnecting follower whose watermark is still
// inside the log catches up incrementally; one further behind is resynced
// with a full snapshot frame. Default 1024.
func WithReplicationLog(epochs int) ServeOption {
	return func(c *serve.Config) { c.ReplicationLogEpochs = epochs }
}

// Serve wraps an engine in the concurrent serving layer. The Server
// becomes the engine's sole writer: stream updates through Submit (or
// Apply) and read through Label/Embedding/TopK/Snapshot — reads are
// lock-free and proceed while batches apply, each observing a whole
// published epoch and never a half-applied batch. Label tracking is
// enabled on the engine as a side effect.
//
// With WithDataDir the server is durable, and if the data dir already
// holds state from a previous run the server RECOVERS it: the engine is
// reconstructed from the newest checkpoint (using eng's model and config;
// eng's own bootstrap state is discarded) and the WAL tail is replayed,
// resuming at the exact pre-crash epoch.
func Serve(eng *Engine, opts ...ServeOption) (*Server, error) {
	var cfg serve.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.DataDir == "" {
		return serve.New(eng, cfg)
	}
	return serve.Open(func(ckpt io.Reader) (serve.Backend, error) {
		use := eng
		if ckpt != nil {
			// Same model, same knobs: the preconditions for the replayed
			// tail to be bit-identical to the pre-crash run.
			restored, err := engine.LoadRipple(ckpt, eng.Model(), eng.Config())
			if err != nil {
				return nil, err
			}
			use = restored
		}
		return serve.NewEngineBackend(use)
	}, cfg)
}

// Read replication, re-exported from internal/serve. A leader Server
// started with StartReplication streams every published epoch's changed
// rows; any number of Followers maintain bit-identical local snapshots
// from that stream and serve the same lock-free pinned reads — the read
// tier scales horizontally while the write path stays single-leader.
type (
	// Follower is a read-only replica: it follows a leader's replication
	// stream, applies epoch-tagged delta frames into its own paged
	// copy-on-write snapshots, and serves Label/TopK/Snapshot reads with
	// leader-identical semantics. See Follow.
	Follower = serve.Follower
	// FollowerStats is a point-in-time counter snapshot of a Follower,
	// including the Epoch/LeaderEpoch/LagEpochs replication watermarks.
	FollowerStats = serve.FollowerStats
	// Replication is the leader-side hub returned by
	// Server.StartReplication.
	Replication = serve.Replication
	// ReplStats are the leader-side replication counters, embedded in
	// ServeStats.
	ReplStats = serve.ReplStats
)

// FollowOption customises Follow.
type FollowOption func(*serve.FollowerConfig)

// FollowWithDataDir makes the follower durable: applied delta frames are
// written ahead to a local WAL under dir and snapshot checkpoints replace
// the log periodically. A restarted follower recovers from dir — newest
// checkpoint plus WAL tail — and resumes from its watermark instead of a
// full leader resync.
func FollowWithDataDir(dir string) FollowOption {
	return func(c *serve.FollowerConfig) { c.DataDir = dir }
}

// FollowWithFsync sets the durable follower's WAL sync policy (same
// tradeoff as WithFsync on a leader).
func FollowWithFsync(on bool) FollowOption {
	return func(c *serve.FollowerConfig) { c.Fsync = on }
}

// FollowWithCheckpointEvery takes an automatic local checkpoint after
// every n applied frames (default 1024; negative disables).
func FollowWithCheckpointEvery(n int) FollowOption {
	return func(c *serve.FollowerConfig) { c.CheckpointEvery = n }
}

// FollowWithPageRows sets the replica snapshot's page granularity (same
// semantics as WithPageRows).
func FollowWithPageRows(rows int) FollowOption {
	return func(c *serve.FollowerConfig) { c.PageRows = rows }
}

// FollowWithTimeouts tunes the leader dial timeout and the redial backoff
// after a failed dial or dead session (defaults 5s / 250ms).
func FollowWithTimeouts(dial, retry time.Duration) FollowOption {
	return func(c *serve.FollowerConfig) { c.DialTimeout, c.RetryEvery = dial, retry }
}

// FollowWithLogger routes the follower's structured diagnostics —
// session establishment, resyncs, redials, frame failures — through log.
// nil (the default) discards them.
func FollowWithLogger(log *slog.Logger) FollowOption {
	return func(c *serve.FollowerConfig) { c.Logger = log }
}

// Follow starts a read replica against a leader's replication address
// (Server.StartReplication on the leader, or rippleserve
// -replicate-addr). It returns after local recovery; catch-up to the
// leader proceeds in the background — wait on Follower.Ready() for the
// first served epoch. If the leader dies the follower keeps serving its
// last epoch (pinned reads stay repeatable) and redials until the leader
// returns.
func Follow(leader string, opts ...FollowOption) (*Follower, error) {
	cfg := serve.FollowerConfig{Leader: leader}
	for _, opt := range opts {
		opt(&cfg)
	}
	return serve.Follow(cfg)
}

// LazyEngine is the request-based serving alternative (§2.2): updates are
// O(1) mutations with no propagation; each Query recomputes the target's
// label on demand by exact vertex-wise inference. Choose it for
// update-heavy, query-light workloads; the trigger-based Engine wins when
// predictions are read often.
type LazyEngine = engine.Lazy

// NewLazyEngine builds a request-based engine over the live graph and
// features (both owned by the engine afterwards). No bootstrap forward
// pass is needed.
func NewLazyEngine(g *Graph, model *Model, features []Vector) (*LazyEngine, error) {
	return engine.NewLazy(g, model, features)
}
