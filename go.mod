module ripple

go 1.24
